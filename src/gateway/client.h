// Client: a small blocking TCP client for the gateway wire protocol.
//
// One request at a time per Client instance: each typed call encodes a
// request frame, sends it, and reads response frames until the one
// echoing its request id arrives (the gateway may interleave nothing
// today, but the id match keeps the client honest against reordering).
// Wire-level errors come back as the Status reconstructed via
// api::StatusFromWire, so callers see the same error surface as
// in-process TouchServer::Call users.
//
// The raw escape hatches (SendRaw, TryReadFrame, fd) exist for the
// protocol-robustness tests: truncated frames, garbage, version probes
// and mid-frame disconnects need byte-level control.
//
// Not thread-safe; one thread per Client.

#ifndef DBTOUCH_GATEWAY_CLIENT_H_
#define DBTOUCH_GATEWAY_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "gateway/wire.h"

namespace dbtouch::gateway {

class Client {
 public:
  Client() = default;
  ~Client() { Close(); }

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  Status Connect(const std::string& host, std::uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  // ---- Typed calls -------------------------------------------------------

  Result<api::OpenSessionResp> OpenSession();
  Result<api::CloseSessionResp> CloseSession(api::SessionId session);
  Result<api::CreateObjectResp> CreateObject(const api::CreateObjectReq& req);
  Result<api::SetActionResp> SetAction(const api::SetActionReq& req);
  Result<api::SubmitBatchResp> SubmitBatch(const api::SubmitBatchReq& req);
  Result<api::StatsResp> Stats();
  Result<api::SessionSnapshotResp> SessionSnapshot(
      const api::SessionSnapshotReq& req);

  /// Polls Stats() until the server reports idle (all submitted quanta
  /// executed or shed) — the wire client's Drain().
  Status WaitIdle();

  // ---- Raw access (robustness tests) -------------------------------------

  /// Sends bytes verbatim — no framing, no validation.
  Status SendRaw(std::string_view bytes);

  /// Reads exactly one frame (blocking). EOF before a complete frame is
  /// kAborted — the "server hung up" signal the robustness tests assert.
  Result<std::string> TryReadFrame(FrameHeader* header);

  template <typename Req, typename Resp>
  Result<Resp> Roundtrip(MessageType type, const Req& req);

 private:
  Status WriteAll(std::string_view bytes);
  Status ReadExact(char* buf, std::size_t n);

  int fd_ = -1;
  std::uint32_t next_request_id_ = 1;
};

}  // namespace dbtouch::gateway

#endif  // DBTOUCH_GATEWAY_CLIENT_H_
