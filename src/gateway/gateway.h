// Gateway: the wire-protocol front door of the touch server.
//
// An epoll-based event loop (N loop threads, level-triggered,
// nonblocking sockets) accepts TCP connections, splits the byte stream
// into frames (gateway/wire.h), decodes each into a server::api request
// struct and calls the same TouchServer::Call overload an in-process
// caller would use. Responses are queued on a bounded per-connection
// write queue; a connection whose peer stops reading past the bound is
// closed rather than buffered unboundedly (the slow-reader policy), and
// a flooding client sees per-event admission rejections in
// SubmitBatchResp.rejected plus kBackpressure at the connection level.
//
// Sessions are connection-owned: sessions opened over a connection are
// closed when that connection goes away (clean close, mid-frame
// disconnect, slow-reader eviction alike), which cancels the session's
// in-flight block fetches through the server's abort path.
//
// Threading: the acceptor lives on loop 0; new connections go to the
// least-loaded loop. Each connection belongs to exactly one loop thread
// for its lifetime, so per-connection state is single-threaded by
// construction; cross-thread interaction is limited to the wake eventfd,
// the accept handoff queue, and the stats atomics.

#ifndef DBTOUCH_GATEWAY_GATEWAY_H_
#define DBTOUCH_GATEWAY_GATEWAY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "gateway/wire.h"
#include "server/touch_server.h"

namespace dbtouch::gateway {

struct GatewayConfig {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral (read the bound port back via port()).
  std::uint16_t port = 0;
  /// Event-loop threads; connections are spread across them.
  int num_loops = 2;
  int listen_backlog = 1024;
  /// Accepts past this are answered with kBackpressure and closed.
  std::size_t max_connections = 8192;
  /// Bytes of queued-but-unsent responses a connection may hold before
  /// it is closed as a slow reader.
  std::size_t write_queue_limit_bytes = 1u << 20;
  /// recv() chunk size.
  std::size_t read_chunk_bytes = 64 * 1024;
};

struct GatewayStatsSnapshot {
  std::int64_t connections_accepted = 0;
  std::int64_t connections_active = 0;
  std::int64_t connections_rejected = 0;
  std::int64_t frames_received = 0;
  std::int64_t frames_sent = 0;
  std::int64_t bytes_received = 0;
  std::int64_t bytes_sent = 0;
  /// Malformed frames (bad magic, oversize, garbage payload, unknown
  /// type) — each also closes its connection.
  std::int64_t protocol_errors = 0;
  std::int64_t version_rejections = 0;
  std::int64_t slow_reader_closes = 0;
  /// Sessions force-closed because their owning connection went away.
  std::int64_t sessions_closed_on_disconnect = 0;
};

class Gateway {
 public:
  explicit Gateway(server::TouchServer& server, GatewayConfig config = {});
  ~Gateway();

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  /// Binds, listens and spawns the loop threads. The server must already
  /// be running.
  Status Start();

  /// Closes the listener and every connection (closing their sessions),
  /// then joins the loop threads. Idempotent.
  Status Stop();

  /// Bound port (resolves config.port == 0 to the ephemeral choice).
  std::uint16_t port() const { return port_; }

  GatewayStatsSnapshot stats() const;

 private:
  struct Connection {
    int fd = -1;
    /// Unparsed inbound bytes.
    std::string in;
    /// Queued outbound bytes; [out_off, out.size()) is still unsent.
    std::string out;
    std::size_t out_off = 0;
    /// Sessions opened over this connection (connection-owned).
    std::vector<api::SessionId> sessions;
    /// EPOLLOUT currently registered.
    bool want_write = false;
    /// Flush the write queue, then close (used after version rejection).
    bool closing = false;
  };

  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;
    std::thread thread;
    /// Owned exclusively by this loop's thread.
    std::unordered_map<int, std::unique_ptr<Connection>> conns;
    /// Accept handoff: loop 0 pushes fds here under mu, then wakes.
    std::mutex mu;
    std::vector<int> pending;
    std::atomic<std::size_t> conn_count{0};
  };

  void LoopMain(std::size_t index);
  void AcceptReady();
  void AdoptPending(Loop& loop);
  void HandleReadable(Loop& loop, Connection& conn);
  void HandleWritable(Loop& loop, Connection& conn);
  /// Parses complete frames out of conn.in. Returns false when the
  /// connection was closed during processing.
  bool ProcessFrames(Loop& loop, Connection& conn);
  /// Decodes + dispatches one frame; appends the response to conn.out.
  /// Returns false when the frame poisons the connection (malformed).
  bool DispatchFrame(Connection& conn, const FrameHeader& header,
                     std::string_view payload);
  /// Flushes conn.out; arms/disarms EPOLLOUT; enforces the write-queue
  /// bound. Returns false when the connection was closed.
  bool FlushWrites(Loop& loop, Connection& conn);
  void CloseConnection(Loop& loop, Connection& conn);
  void UpdateEpollOut(Loop& loop, Connection& conn, bool want);

  server::TouchServer& server_;
  GatewayConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<bool> running_{false};

  std::atomic<std::int64_t> connections_accepted_{0};
  std::atomic<std::int64_t> connections_active_{0};
  std::atomic<std::int64_t> connections_rejected_{0};
  std::atomic<std::int64_t> frames_received_{0};
  std::atomic<std::int64_t> frames_sent_{0};
  std::atomic<std::int64_t> bytes_received_{0};
  std::atomic<std::int64_t> bytes_sent_{0};
  std::atomic<std::int64_t> protocol_errors_{0};
  std::atomic<std::int64_t> version_rejections_{0};
  std::atomic<std::int64_t> slow_reader_closes_{0};
  std::atomic<std::int64_t> sessions_closed_on_disconnect_{0};
};

}  // namespace dbtouch::gateway

#endif  // DBTOUCH_GATEWAY_GATEWAY_H_
