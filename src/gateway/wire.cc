#include "gateway/wire.h"

#include <bit>
#include <cstring>

#include "common/macros.h"

namespace dbtouch::gateway {

namespace {

// Vectors on the wire are a u32 count followed by the elements; cap the
// count against the remaining payload so a hostile length prefix cannot
// drive a huge allocation before element decoding fails.
constexpr std::size_t kMinElementBytes = 1;

Status MalformedVector(std::uint32_t count, std::size_t remaining) {
  return Status::InvalidArgument("wire: vector count " + std::to_string(count) +
                                 " exceeds remaining payload bytes " +
                                 std::to_string(remaining));
}

}  // namespace

std::string_view MessageTypeName(MessageType type) {
  switch (type) {
    case MessageType::kError:
      return "Error";
    case MessageType::kOpenSession:
      return "OpenSession";
    case MessageType::kCloseSession:
      return "CloseSession";
    case MessageType::kCreateObject:
      return "CreateObject";
    case MessageType::kSetAction:
      return "SetAction";
    case MessageType::kSubmitBatch:
      return "SubmitBatch";
    case MessageType::kStats:
      return "Stats";
    case MessageType::kSessionSnapshot:
      return "SessionSnapshot";
  }
  return "Unknown";
}

// ---- WireWriter ------------------------------------------------------------

void WireWriter::U16(std::uint16_t v) {
  out_.push_back(static_cast<char>(v & 0xff));
  out_.push_back(static_cast<char>((v >> 8) & 0xff));
}

void WireWriter::U32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::F64(double v) { U64(std::bit_cast<std::uint64_t>(v)); }

void WireWriter::String(std::string_view v) {
  U32(static_cast<std::uint32_t>(v.size()));
  out_.append(v);
}

// ---- WireReader ------------------------------------------------------------

Status WireReader::Need(std::size_t n) const {
  if (data_.size() - pos_ < n) {
    return Status::InvalidArgument(
        "wire: truncated payload (need " + std::to_string(n) + " bytes, have " +
        std::to_string(data_.size() - pos_) + ")");
  }
  return Status::OK();
}

Result<std::uint8_t> WireReader::U8() {
  DBTOUCH_RETURN_IF_ERROR(Need(1));
  return static_cast<std::uint8_t>(data_[pos_++]);
}

Result<std::uint16_t> WireReader::U16() {
  DBTOUCH_RETURN_IF_ERROR(Need(2));
  std::uint16_t v = 0;
  for (int i = 0; i < 2; ++i) {
    v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 2;
  return v;
}

Result<std::uint32_t> WireReader::U32() {
  DBTOUCH_RETURN_IF_ERROR(Need(4));
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<std::uint64_t> WireReader::U64() {
  DBTOUCH_RETURN_IF_ERROR(Need(8));
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<std::int32_t> WireReader::I32() {
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t v, U32());
  return static_cast<std::int32_t>(v);
}

Result<std::int64_t> WireReader::I64() {
  DBTOUCH_ASSIGN_OR_RETURN(std::uint64_t v, U64());
  return static_cast<std::int64_t>(v);
}

Result<double> WireReader::F64() {
  DBTOUCH_ASSIGN_OR_RETURN(std::uint64_t v, U64());
  return std::bit_cast<double>(v);
}

Result<bool> WireReader::Bool() {
  DBTOUCH_ASSIGN_OR_RETURN(std::uint8_t v, U8());
  return v != 0;
}

Result<std::string> WireReader::String() {
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t len, U32());
  if (len > remaining()) return MalformedVector(len, remaining());
  std::string out(data_.substr(pos_, len));
  pos_ += len;
  return out;
}

// ---- Header ----------------------------------------------------------------

void EncodeHeader(const FrameHeader& header, std::string* out) {
  WireWriter w;
  w.U32(kMagic);
  w.U16(header.version);
  w.U16(header.type);
  w.U32(header.request_id);
  w.U32(header.payload_len);
  out->append(w.buffer());
}

Result<FrameHeader> DecodeHeader(std::string_view data) {
  WireReader r(data.substr(0, kFrameHeaderBytes));
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t magic, r.U32());
  if (magic != kMagic) {
    return Status::InvalidArgument("wire: bad frame magic");
  }
  FrameHeader header;
  DBTOUCH_ASSIGN_OR_RETURN(header.version, r.U16());
  DBTOUCH_ASSIGN_OR_RETURN(header.type, r.U16());
  DBTOUCH_ASSIGN_OR_RETURN(header.request_id, r.U32());
  DBTOUCH_ASSIGN_OR_RETURN(header.payload_len, r.U32());
  if (header.payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument(
        "wire: payload length " + std::to_string(header.payload_len) +
        " exceeds limit " + std::to_string(kMaxPayloadBytes));
  }
  return header;
}

// ---- Shared sub-codecs -----------------------------------------------------

namespace {

void EncodeRect(const api::WireRect& v, WireWriter& w) {
  w.F64(v.x);
  w.F64(v.y);
  w.F64(v.width);
  w.F64(v.height);
}

Status DecodeRect(WireReader& r, api::WireRect* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->x, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->y, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->width, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->height, r.F64());
  return Status::OK();
}

void EncodeAction(const api::WireAction& v, WireWriter& w) {
  w.U8(v.kind);
  w.U8(v.agg);
  w.I64(v.summary_k);
  w.Bool(v.has_predicate);
  w.U8(v.predicate_op);
  w.F64(v.predicate_lo);
  w.F64(v.predicate_hi);
  w.Bool(v.use_zone_map);
  w.U32(v.group_key_attribute);
  w.U32(v.group_value_attribute);
}

Status DecodeAction(WireReader& r, api::WireAction* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->kind, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->agg, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->summary_k, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->has_predicate, r.Bool());
  DBTOUCH_ASSIGN_OR_RETURN(v->predicate_op, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->predicate_lo, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->predicate_hi, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->use_zone_map, r.Bool());
  DBTOUCH_ASSIGN_OR_RETURN(v->group_key_attribute, r.U32());
  DBTOUCH_ASSIGN_OR_RETURN(v->group_value_attribute, r.U32());
  return Status::OK();
}

void EncodeEvent(const api::WireTouchEvent& v, WireWriter& w) {
  w.I64(v.timestamp_us);
  w.I32(v.finger_id);
  w.U8(v.phase);
  w.F64(v.x_cm);
  w.F64(v.y_cm);
}

Status DecodeEvent(WireReader& r, api::WireTouchEvent* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->timestamp_us, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->finger_id, r.I32());
  DBTOUCH_ASSIGN_OR_RETURN(v->phase, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->x_cm, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->y_cm, r.F64());
  return Status::OK();
}

void EncodeObjectInfo(const api::ObjectInfo& v, WireWriter& w) {
  w.I64(v.object);
  w.U8(v.kind);
  w.U8(v.orientation);
  w.String(v.table);
  w.I64(v.column);
  EncodeRect(v.frame, w);
  w.I64(v.tuple_count);
}

Status DecodeObjectInfo(WireReader& r, api::ObjectInfo* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->object, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->kind, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->orientation, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->table, r.String());
  DBTOUCH_ASSIGN_OR_RETURN(v->column, r.I64());
  DBTOUCH_RETURN_IF_ERROR(DecodeRect(r, &v->frame));
  DBTOUCH_ASSIGN_OR_RETURN(v->tuple_count, r.I64());
  return Status::OK();
}

void EncodeResultInfo(const api::ResultInfo& v, WireWriter& w) {
  w.I64(v.object);
  w.U8(v.kind);
  w.I64(v.row);
  w.F64(v.value);
  w.Bool(v.approximate);
}

Status DecodeResultInfo(WireReader& r, api::ResultInfo* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->object, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->kind, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->row, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->value, r.F64());
  DBTOUCH_ASSIGN_OR_RETURN(v->approximate, r.Bool());
  return Status::OK();
}

}  // namespace

// ---- Request/response codecs -----------------------------------------------

void Encode(const api::OpenSessionReq&, WireWriter&) {}

Status Decode(WireReader&, api::OpenSessionReq*) { return Status::OK(); }

void Encode(const api::OpenSessionResp& v, WireWriter& w) { w.I64(v.session); }

Status Decode(WireReader& r, api::OpenSessionResp* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  return Status::OK();
}

void Encode(const api::CloseSessionReq& v, WireWriter& w) { w.I64(v.session); }

Status Decode(WireReader& r, api::CloseSessionReq* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  return Status::OK();
}

void Encode(const api::CloseSessionResp&, WireWriter&) {}

Status Decode(WireReader&, api::CloseSessionResp*) { return Status::OK(); }

void Encode(const api::CreateObjectReq& v, WireWriter& w) {
  w.I64(v.session);
  w.U8(v.kind);
  w.String(v.table);
  w.String(v.column);
  EncodeRect(v.frame, w);
}

Status Decode(WireReader& r, api::CreateObjectReq* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->kind, r.U8());
  DBTOUCH_ASSIGN_OR_RETURN(v->table, r.String());
  DBTOUCH_ASSIGN_OR_RETURN(v->column, r.String());
  return DecodeRect(r, &v->frame);
}

void Encode(const api::CreateObjectResp& v, WireWriter& w) { w.I64(v.object); }

Status Decode(WireReader& r, api::CreateObjectResp* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->object, r.I64());
  return Status::OK();
}

void Encode(const api::SetActionReq& v, WireWriter& w) {
  w.I64(v.session);
  w.I64(v.object);
  EncodeAction(v.action, w);
}

Status Decode(WireReader& r, api::SetActionReq* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->object, r.I64());
  return DecodeAction(r, &v->action);
}

void Encode(const api::SetActionResp&, WireWriter&) {}

Status Decode(WireReader&, api::SetActionResp*) { return Status::OK(); }

void Encode(const api::SubmitBatchReq& v, WireWriter& w) {
  w.I64(v.session);
  w.Bool(v.paced);
  w.U32(static_cast<std::uint32_t>(v.events.size()));
  for (const auto& event : v.events) EncodeEvent(event, w);
}

Status Decode(WireReader& r, api::SubmitBatchReq* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->paced, r.Bool());
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t count, r.U32());
  if (count > r.remaining() / kMinElementBytes) {
    return MalformedVector(count, r.remaining());
  }
  v->events.clear();
  v->events.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    api::WireTouchEvent event;
    DBTOUCH_RETURN_IF_ERROR(DecodeEvent(r, &event));
    v->events.push_back(event);
  }
  return Status::OK();
}

void Encode(const api::SubmitBatchResp& v, WireWriter& w) {
  w.I64(v.accepted);
  w.I64(v.rejected);
}

Status Decode(WireReader& r, api::SubmitBatchResp* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->accepted, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->rejected, r.I64());
  return Status::OK();
}

void Encode(const api::StatsReq&, WireWriter&) {}

Status Decode(WireReader&, api::StatsReq*) { return Status::OK(); }

void Encode(const api::StatsResp& v, WireWriter& w) {
  w.I64(v.sessions_active);
  w.I64(v.submitted);
  w.I64(v.executed);
  w.I64(v.dropped_quanta);
  w.I64(v.deadline_misses);
  w.I64(v.p50_latency_us);
  w.I64(v.p99_latency_us);
  w.I64(v.suspended_quanta);
  w.I64(v.buffer_hits);
  w.I64(v.buffer_lookups);
}

Status Decode(WireReader& r, api::StatsResp* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->sessions_active, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->submitted, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->executed, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->dropped_quanta, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->deadline_misses, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->p50_latency_us, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->p99_latency_us, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->suspended_quanta, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->buffer_hits, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->buffer_lookups, r.I64());
  return Status::OK();
}

void Encode(const api::SessionSnapshotReq& v, WireWriter& w) {
  w.I64(v.session);
  w.I64(v.max_results);
}

Status Decode(WireReader& r, api::SessionSnapshotReq* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->max_results, r.I64());
  return Status::OK();
}

void Encode(const api::SessionSnapshotResp& v, WireWriter& w) {
  w.I64(v.session);
  w.U32(static_cast<std::uint32_t>(v.objects.size()));
  for (const auto& object : v.objects) EncodeObjectInfo(object, w);
  w.I64(v.touch_events);
  w.I64(v.gesture_events);
  w.I64(v.entries_returned);
  w.I64(v.rows_scanned);
  w.I64(v.rows_pruned);
  w.I64(v.suspensions);
  w.I64(v.fetch_errors);
  w.I64(v.shed_levels);
  w.I64(v.result_count);
  w.U32(static_cast<std::uint32_t>(v.results.size()));
  for (const auto& result : v.results) EncodeResultInfo(result, w);
  // Partial-answer extension, appended AFTER the complete v1 payload per
  // the append-only protocol-evolution policy: old decoders stop at the
  // original end and keep the zero defaults. Per-result flags ride in
  // trailing parallel arrays so EncodeResultInfo's v1 layout is untouched.
  w.I64(v.partial_answers);
  w.I64(v.refinements);
  w.U32(static_cast<std::uint32_t>(v.results.size()));
  for (const auto& result : v.results) {
    w.Bool(result.partial);
    w.I64(result.refine_seq);
  }
}

Status Decode(WireReader& r, api::SessionSnapshotResp* v) {
  DBTOUCH_ASSIGN_OR_RETURN(v->session, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t object_count, r.U32());
  if (object_count > r.remaining() / kMinElementBytes) {
    return MalformedVector(object_count, r.remaining());
  }
  v->objects.clear();
  v->objects.reserve(object_count);
  for (std::uint32_t i = 0; i < object_count; ++i) {
    api::ObjectInfo info;
    DBTOUCH_RETURN_IF_ERROR(DecodeObjectInfo(r, &info));
    v->objects.push_back(std::move(info));
  }
  DBTOUCH_ASSIGN_OR_RETURN(v->touch_events, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->gesture_events, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->entries_returned, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->rows_scanned, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->rows_pruned, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->suspensions, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->fetch_errors, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->shed_levels, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->result_count, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t result_count, r.U32());
  if (result_count > r.remaining() / kMinElementBytes) {
    return MalformedVector(result_count, r.remaining());
  }
  v->results.clear();
  v->results.reserve(result_count);
  for (std::uint32_t i = 0; i < result_count; ++i) {
    api::ResultInfo info;
    DBTOUCH_RETURN_IF_ERROR(DecodeResultInfo(r, &info));
    v->results.push_back(info);
  }
  if (r.AtEnd()) {
    return Status::OK();  // v1 peer: partial-answer defaults stand.
  }
  DBTOUCH_ASSIGN_OR_RETURN(v->partial_answers, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(v->refinements, r.I64());
  DBTOUCH_ASSIGN_OR_RETURN(std::uint32_t flag_count, r.U32());
  if (flag_count != v->results.size() ||
      flag_count > r.remaining() / kMinElementBytes + 1) {
    return MalformedVector(flag_count, r.remaining());
  }
  for (std::uint32_t i = 0; i < flag_count; ++i) {
    DBTOUCH_ASSIGN_OR_RETURN(v->results[i].partial, r.Bool());
    DBTOUCH_ASSIGN_OR_RETURN(v->results[i].refine_seq, r.I64());
  }
  return Status::OK();
}

// ---- Frame assembly --------------------------------------------------------

std::string EncodeErrorFrame(MessageType type, std::uint32_t request_id,
                             api::WireCode code, std::string_view message) {
  WireWriter w;
  w.U16(static_cast<std::uint16_t>(code));
  w.String(message);
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type) | kResponseBit;
  header.request_id = request_id;
  header.payload_len = static_cast<std::uint32_t>(w.buffer().size());
  std::string out;
  out.reserve(kFrameHeaderBytes + w.buffer().size());
  EncodeHeader(header, &out);
  out.append(w.buffer());
  return out;
}

Result<ResponseEnvelope> DecodeResponsePayload(std::string_view payload) {
  WireReader r(payload);
  ResponseEnvelope envelope;
  DBTOUCH_ASSIGN_OR_RETURN(std::uint16_t code, r.U16());
  envelope.code = static_cast<api::WireCode>(code);
  if (envelope.code == api::WireCode::kOk) {
    envelope.body = payload.substr(payload.size() - r.remaining());
  } else {
    DBTOUCH_ASSIGN_OR_RETURN(envelope.message, r.String());
  }
  return envelope;
}

}  // namespace dbtouch::gateway
