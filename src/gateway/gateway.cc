#include "gateway/gateway.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace dbtouch::gateway {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string("gateway: ") + what + ": " +
                          std::strerror(errno));
}

}  // namespace

Gateway::Gateway(server::TouchServer& server, GatewayConfig config)
    : server_(server), config_(std::move(config)) {
  if (config_.num_loops < 1) config_.num_loops = 1;
}

Gateway::~Gateway() { (void)Stop(); }

Status Gateway::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("gateway: already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("gateway: bad host " + config_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status st = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, config_.listen_backlog) != 0) {
    Status st = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    Status st = Errno("getsockname");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  port_ = ntohs(addr.sin_port);

  loops_.clear();
  for (int i = 0; i < config_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      Status st = Errno("epoll_create1/eventfd");
      if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
      if (loop->wake_fd >= 0) ::close(loop->wake_fd);
      ::close(listen_fd_);
      listen_fd_ = -1;
      loops_.clear();
      return st;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  // The acceptor lives on loop 0.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  running_.store(true, std::memory_order_release);
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { LoopMain(i); });
  }
  return Status::OK();
}

Status Gateway::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return Status::OK();
  }
  for (auto& loop : loops_) {
    std::uint64_t one = 1;
    (void)!::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    // Connections not closed by the loop thread (it exits on the wake):
    // close them here, sessions included.
    for (auto& [fd, conn] : loop->conns) {
      for (api::SessionId session : conn->sessions) {
        if (server_.CloseSession(session).ok()) {
          sessions_closed_on_disconnect_.fetch_add(1,
                                                   std::memory_order_relaxed);
        }
      }
      ::close(conn->fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
    }
    loop->conns.clear();
    {
      std::lock_guard<std::mutex> lock(loop->mu);
      for (int fd : loop->pending) ::close(fd);
      loop->pending.clear();
    }
    ::close(loop->epoll_fd);
    ::close(loop->wake_fd);
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  return Status::OK();
}

GatewayStatsSnapshot Gateway::stats() const {
  GatewayStatsSnapshot s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.frames_sent = frames_sent_.load(std::memory_order_relaxed);
  s.bytes_received = bytes_received_.load(std::memory_order_relaxed);
  s.bytes_sent = bytes_sent_.load(std::memory_order_relaxed);
  s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  s.version_rejections = version_rejections_.load(std::memory_order_relaxed);
  s.slow_reader_closes = slow_reader_closes_.load(std::memory_order_relaxed);
  s.sessions_closed_on_disconnect =
      sessions_closed_on_disconnect_.load(std::memory_order_relaxed);
  return s;
}

void Gateway::LoopMain(std::size_t index) {
  Loop& loop = *loops_[index];
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (running_.load(std::memory_order_acquire)) {
    int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      std::uint32_t mask = events[i].events;
      if (fd == loop.wake_fd) {
        std::uint64_t drained;
        while (::read(loop.wake_fd, &drained, sizeof(drained)) > 0) {
        }
        AdoptPending(loop);
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      Connection& conn = *it->second;
      if (mask & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(loop, conn);
        continue;
      }
      if (mask & EPOLLIN) {
        HandleReadable(loop, conn);
        // HandleReadable may have closed the connection.
        if (loop.conns.find(fd) == loop.conns.end()) continue;
      }
      if (mask & EPOLLOUT) {
        HandleWritable(loop, conn);
      }
    }
  }
}

void Gateway::AcceptReady() {
  while (true) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (static_cast<std::size_t>(
            connections_active_.load(std::memory_order_relaxed)) >=
        config_.max_connections) {
      // Over capacity: best-effort backpressure notice, then close. The
      // frame may not fit the socket buffer of a just-accepted socket
      // only in pathological cases; a lost notice still ends in a close
      // the client can observe.
      std::string frame =
          EncodeErrorFrame(MessageType::kError, 0, api::WireCode::kBackpressure,
                           "gateway: connection limit reached");
      (void)::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    connections_active_.fetch_add(1, std::memory_order_relaxed);
    // Hand the connection to the least-loaded loop.
    std::size_t target = 0;
    std::size_t best = loops_[0]->conn_count.load(std::memory_order_relaxed);
    for (std::size_t i = 1; i < loops_.size(); ++i) {
      std::size_t count = loops_[i]->conn_count.load(std::memory_order_relaxed);
      if (count < best) {
        best = count;
        target = i;
      }
    }
    Loop& loop = *loops_[target];
    loop.conn_count.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(loop.mu);
      loop.pending.push_back(fd);
    }
    if (target == 0) {
      AdoptPending(loop);
    } else {
      std::uint64_t one_wake = 1;
      (void)!::write(loop.wake_fd, &one_wake, sizeof(one_wake));
    }
  }
}

void Gateway::AdoptPending(Loop& loop) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(loop.mu);
    fds.swap(loop.pending);
  }
  for (int fd : fds) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
      loop.conn_count.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    loop.conns.emplace(fd, std::move(conn));
  }
}

void Gateway::HandleReadable(Loop& loop, Connection& conn) {
  char chunk[64 * 1024];
  const std::size_t chunk_cap =
      std::min(sizeof(chunk), config_.read_chunk_bytes);
  while (true) {
    ssize_t n = ::read(conn.fd, chunk, chunk_cap);
    if (n > 0) {
      bytes_received_.fetch_add(n, std::memory_order_relaxed);
      conn.in.append(chunk, static_cast<std::size_t>(n));
      if (conn.in.size() >= kMaxPayloadBytes + kFrameHeaderBytes) {
        // Parse eagerly so a fast sender cannot balloon the read buffer.
        if (!ProcessFrames(loop, conn)) return;
      }
      continue;
    }
    if (n == 0) {
      // Peer closed (possibly mid-frame): drop the connection and its
      // sessions; any partial frame in conn.in is discarded.
      CloseConnection(loop, conn);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    CloseConnection(loop, conn);
    return;
  }
  if (!ProcessFrames(loop, conn)) return;
  (void)FlushWrites(loop, conn);
}

void Gateway::HandleWritable(Loop& loop, Connection& conn) {
  (void)FlushWrites(loop, conn);
}

bool Gateway::ProcessFrames(Loop& loop, Connection& conn) {
  std::size_t offset = 0;
  while (!conn.closing) {
    if (conn.in.size() - offset < kFrameHeaderBytes) break;
    std::string_view view(conn.in.data() + offset, conn.in.size() - offset);
    Result<FrameHeader> header = DecodeHeader(view);
    if (!header.ok()) {
      // Bad magic / oversize length: the stream is unframeable from here
      // on, so answer once and cut the connection.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      conn.out.append(EncodeErrorFrame(MessageType::kError, 0,
                                       api::WireCode::kMalformedFrame,
                                       header.status().message()));
      if (FlushWrites(loop, conn)) CloseConnection(loop, conn);
      return false;
    }
    if (view.size() - kFrameHeaderBytes < header->payload_len) break;
    offset += kFrameHeaderBytes;
    std::string_view payload(conn.in.data() + offset, header->payload_len);
    offset += header->payload_len;
    frames_received_.fetch_add(1, std::memory_order_relaxed);
    if (header->version != kWireVersion) {
      version_rejections_.fetch_add(1, std::memory_order_relaxed);
      conn.out.append(EncodeErrorFrame(
          header->message_type(), header->request_id,
          api::WireCode::kUnsupportedVersion,
          "gateway: protocol version " + std::to_string(header->version) +
              " not supported (speaking " + std::to_string(kWireVersion) +
              ")"));
      // Flush the rejection, then close; nothing after this frame is
      // trusted to parse under our version.
      conn.closing = true;
      break;
    }
    if (!DispatchFrame(conn, *header, payload)) {
      if (FlushWrites(loop, conn)) CloseConnection(loop, conn);
      return false;
    }
  }
  if (offset > 0) conn.in.erase(0, offset);
  return true;
}

bool Gateway::DispatchFrame(Connection& conn, const FrameHeader& header,
                            std::string_view payload) {
  const std::uint32_t id = header.request_id;
  const MessageType type = header.message_type();

  // Decode into the api struct, call the server, encode the reply. A
  // decode failure or trailing garbage is a malformed frame: answer and
  // poison the connection (return false).
  auto malformed = [&](const Status& st) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    conn.out.append(EncodeErrorFrame(type, id, api::WireCode::kMalformedFrame,
                                     st.message()));
    return false;
  };
  auto dispatch = [&](auto req) -> bool {
    WireReader r(payload);
    Status st = Decode(r, &req);
    if (!st.ok()) return malformed(st);
    if (!r.AtEnd()) {
      return malformed(Status::InvalidArgument(
          "wire: " + std::to_string(r.remaining()) +
          " trailing bytes after payload"));
    }
    auto resp = server_.Call(req);
    if (!resp.ok()) {
      conn.out.append(EncodeErrorFrame(type, id,
                                       api::WireCodeFromStatus(resp.status()),
                                       resp.status().message()));
      frames_sent_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    if constexpr (std::is_same_v<decltype(req), api::OpenSessionReq>) {
      conn.sessions.push_back(resp->session);
    } else if constexpr (std::is_same_v<decltype(req), api::CloseSessionReq>) {
      conn.sessions.erase(
          std::remove(conn.sessions.begin(), conn.sessions.end(), req.session),
          conn.sessions.end());
    }
    conn.out.append(EncodeResponseFrame(type, id, *resp));
    frames_sent_.fetch_add(1, std::memory_order_relaxed);
    return true;
  };

  switch (type) {
    case MessageType::kOpenSession:
      return dispatch(api::OpenSessionReq{});
    case MessageType::kCloseSession:
      return dispatch(api::CloseSessionReq{});
    case MessageType::kCreateObject:
      return dispatch(api::CreateObjectReq{});
    case MessageType::kSetAction:
      return dispatch(api::SetActionReq{});
    case MessageType::kSubmitBatch:
      return dispatch(api::SubmitBatchReq{});
    case MessageType::kStats:
      return dispatch(api::StatsReq{});
    case MessageType::kSessionSnapshot:
      return dispatch(api::SessionSnapshotReq{});
    case MessageType::kError:
      break;
  }
  return malformed(Status::InvalidArgument(
      "wire: unknown message type " + std::to_string(header.type)));
}

bool Gateway::FlushWrites(Loop& loop, Connection& conn) {
  while (conn.out_off < conn.out.size()) {
    ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off,
                       conn.out.size() - conn.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      bytes_sent_.fetch_add(n, std::memory_order_relaxed);
      conn.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(loop, conn);
    return false;
  }
  if (conn.out_off == conn.out.size()) {
    conn.out.clear();
    conn.out_off = 0;
    if (conn.closing) {
      CloseConnection(loop, conn);
      return false;
    }
    UpdateEpollOut(loop, conn, false);
    return true;
  }
  // Still backlogged: reclaim consumed prefix, enforce the bound, arm
  // EPOLLOUT.
  if (conn.out_off > (64u << 10)) {
    conn.out.erase(0, conn.out_off);
    conn.out_off = 0;
  }
  if (conn.out.size() - conn.out_off > config_.write_queue_limit_bytes) {
    slow_reader_closes_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(loop, conn);
    return false;
  }
  UpdateEpollOut(loop, conn, true);
  return true;
}

void Gateway::UpdateEpollOut(Loop& loop, Connection& conn, bool want) {
  if (conn.want_write == want) return;
  conn.want_write = want;
  epoll_event ev{};
  ev.events = EPOLLIN | (want ? static_cast<std::uint32_t>(EPOLLOUT) : 0u);
  ev.data.fd = conn.fd;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Gateway::CloseConnection(Loop& loop, Connection& conn) {
  // Connection-owned sessions die with the connection; closing a session
  // aborts its in-flight block fetches (the PR-5 abort path) and drops
  // its queued quanta.
  for (api::SessionId session : conn.sessions) {
    if (server_.CloseSession(session).ok()) {
      sessions_closed_on_disconnect_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  int fd = conn.fd;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  loop.conns.erase(fd);
  loop.conn_count.fetch_sub(1, std::memory_order_relaxed);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace dbtouch::gateway
