#include "gateway/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/macros.h"

namespace dbtouch::gateway {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string("client: ") + what + ": " +
                          std::strerror(errno));
}

}  // namespace

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_id_(other.next_request_id_) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_id_ = other.next_request_id_;
  }
  return *this;
}

Status Client::Connect(const std::string& host, std::uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("client: bad host " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Errno("connect");
    Close();
    return st;
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::WriteAll(std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Aborted("client: connection closed by server");
      }
      return Errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Status Client::ReadExact(char* buf, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    ssize_t r = ::read(fd_, buf + got, n - got);
    if (r == 0) {
      return Status::Aborted("client: connection closed by server");
    }
    if (r < 0) {
      if (errno == EINTR) continue;
      // A reset after the server decided to hang up reads the same as a
      // clean close for the robustness tests' purposes.
      if (errno == ECONNRESET) {
        return Status::Aborted("client: connection reset by server");
      }
      return Errno("read");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status::OK();
}

Status Client::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  return WriteAll(bytes);
}

Result<std::string> Client::TryReadFrame(FrameHeader* header) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  char head[kFrameHeaderBytes];
  DBTOUCH_RETURN_IF_ERROR(ReadExact(head, sizeof(head)));
  DBTOUCH_ASSIGN_OR_RETURN(
      FrameHeader h, DecodeHeader(std::string_view(head, sizeof(head))));
  std::string payload(h.payload_len, '\0');
  if (h.payload_len > 0) {
    DBTOUCH_RETURN_IF_ERROR(ReadExact(payload.data(), payload.size()));
  }
  if (header != nullptr) *header = h;
  return payload;
}

template <typename Req, typename Resp>
Result<Resp> Client::Roundtrip(MessageType type, const Req& req) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  const std::uint32_t id = next_request_id_++;
  DBTOUCH_RETURN_IF_ERROR(WriteAll(EncodeRequestFrame(type, id, req)));
  while (true) {
    FrameHeader header;
    DBTOUCH_ASSIGN_OR_RETURN(std::string payload, TryReadFrame(&header));
    if (!header.is_response() || header.request_id != id) continue;
    DBTOUCH_ASSIGN_OR_RETURN(ResponseEnvelope envelope,
                             DecodeResponsePayload(payload));
    if (envelope.code != api::WireCode::kOk) {
      return api::StatusFromWire(envelope.code, std::move(envelope.message));
    }
    Resp resp;
    WireReader r(envelope.body);
    DBTOUCH_RETURN_IF_ERROR(Decode(r, &resp));
    return resp;
  }
}

Result<api::OpenSessionResp> Client::OpenSession() {
  return Roundtrip<api::OpenSessionReq, api::OpenSessionResp>(
      MessageType::kOpenSession, api::OpenSessionReq{});
}

Result<api::CloseSessionResp> Client::CloseSession(api::SessionId session) {
  api::CloseSessionReq req;
  req.session = session;
  return Roundtrip<api::CloseSessionReq, api::CloseSessionResp>(
      MessageType::kCloseSession, req);
}

Result<api::CreateObjectResp> Client::CreateObject(
    const api::CreateObjectReq& req) {
  return Roundtrip<api::CreateObjectReq, api::CreateObjectResp>(
      MessageType::kCreateObject, req);
}

Result<api::SetActionResp> Client::SetAction(const api::SetActionReq& req) {
  return Roundtrip<api::SetActionReq, api::SetActionResp>(
      MessageType::kSetAction, req);
}

Result<api::SubmitBatchResp> Client::SubmitBatch(
    const api::SubmitBatchReq& req) {
  return Roundtrip<api::SubmitBatchReq, api::SubmitBatchResp>(
      MessageType::kSubmitBatch, req);
}

Result<api::StatsResp> Client::Stats() {
  return Roundtrip<api::StatsReq, api::StatsResp>(MessageType::kStats,
                                                  api::StatsReq{});
}

Result<api::SessionSnapshotResp> Client::SessionSnapshot(
    const api::SessionSnapshotReq& req) {
  return Roundtrip<api::SessionSnapshotReq, api::SessionSnapshotResp>(
      MessageType::kSessionSnapshot, req);
}

Status Client::WaitIdle() {
  while (true) {
    DBTOUCH_ASSIGN_OR_RETURN(api::StatsResp stats, Stats());
    if (stats.idle()) return Status::OK();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace dbtouch::gateway
