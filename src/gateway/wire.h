// The dbTouch wire protocol: length-prefixed binary frames carrying the
// server::api request/response structs across a socket.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic        0x44425457 ("DBTW" when read as LE bytes)
//   4       2     version      protocol version (api::kApiVersion)
//   6       2     type         MessageType; responses set kResponseBit
//   8       4     request_id   client-chosen, echoed in the response
//   12      4     payload_len  bytes following this header
//   16      ...   payload
//
// Request payloads are the api struct fields in declaration order,
// encoded by the WireWriter primitives below. Response payloads start
// with a u16 api::WireCode: kOk is followed by the response struct's
// fields, any other code by a string diagnostic. The codec is strictly
// deterministic — encoding a decoded request reproduces the original
// bytes bit-identically, which the api round-trip test asserts.
//
// See src/gateway/README.md for the full spec, version-negotiation rules
// and the protocol-evolution policy.

#ifndef DBTOUCH_GATEWAY_WIRE_H_
#define DBTOUCH_GATEWAY_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "server/api.h"

namespace dbtouch::gateway {

namespace api = server::api;

inline constexpr std::uint32_t kMagic = 0x44425457;  // "WTBD" LE / "DBTW"
inline constexpr std::uint16_t kWireVersion = api::kApiVersion;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on payload_len a peer may send; larger frames are
/// rejected as malformed before any allocation happens.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 20;  // 1 MiB
/// Set on the type field of every response frame.
inline constexpr std::uint16_t kResponseBit = 0x8000;

/// Message types. Append-only; never renumber (the values are the wire
/// contract). kError is response-only: the server uses it when it cannot
/// attribute an error to a known request type.
enum class MessageType : std::uint16_t {
  kError = 0,
  kOpenSession = 1,
  kCloseSession = 2,
  kCreateObject = 3,
  kSetAction = 4,
  kSubmitBatch = 5,
  kStats = 6,
  kSessionSnapshot = 7,
};

std::string_view MessageTypeName(MessageType type);

struct FrameHeader {
  std::uint16_t version = kWireVersion;
  std::uint16_t type = 0;
  std::uint32_t request_id = 0;
  std::uint32_t payload_len = 0;

  bool is_response() const { return (type & kResponseBit) != 0; }
  MessageType message_type() const {
    return static_cast<MessageType>(type & ~kResponseBit);
  }
};

// ---- Primitive encoding ----------------------------------------------------

/// Appends little-endian primitives to a byte buffer. Strings carry a u32
/// length prefix. Doubles travel as their IEEE-754 bit pattern.
class WireWriter {
 public:
  void U8(std::uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(std::uint16_t v);
  void U32(std::uint32_t v);
  void U64(std::uint64_t v);
  void I32(std::int32_t v) { U32(static_cast<std::uint32_t>(v)); }
  void I64(std::int64_t v) { U64(static_cast<std::uint64_t>(v)); }
  void F64(double v);
  void Bool(bool v) { U8(v ? 1 : 0); }
  void String(std::string_view v);

  const std::string& buffer() const { return out_; }
  std::string str() && { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked little-endian reads over a payload view. Every getter
/// fails with InvalidArgument on underrun instead of reading past the
/// end, so truncated frames surface as clean decode errors.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  Result<std::uint8_t> U8();
  Result<std::uint16_t> U16();
  Result<std::uint32_t> U32();
  Result<std::uint64_t> U64();
  Result<std::int32_t> I32();
  Result<std::int64_t> I64();
  Result<double> F64();
  Result<bool> Bool();
  Result<std::string> String();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  Status Need(std::size_t n) const;

  std::string_view data_;
  std::size_t pos_ = 0;
};

// ---- Header ----------------------------------------------------------------

void EncodeHeader(const FrameHeader& header, std::string* out);

/// Decodes and validates a header from the first kFrameHeaderBytes of
/// `data`. Bad magic or a payload_len over kMaxPayloadBytes is
/// InvalidArgument; an unsupported version is NOT rejected here (the
/// caller decides, so it can answer with kUnsupportedVersion).
Result<FrameHeader> DecodeHeader(std::string_view data);

// ---- Payload codecs --------------------------------------------------------
//
// One Encode/Decode pair per api struct, fields in declaration order.
// Decode returns InvalidArgument on truncation; trailing unread bytes
// are the caller's concern (the gateway treats them as malformed).

void Encode(const api::OpenSessionReq& v, WireWriter& w);
void Encode(const api::OpenSessionResp& v, WireWriter& w);
void Encode(const api::CloseSessionReq& v, WireWriter& w);
void Encode(const api::CloseSessionResp& v, WireWriter& w);
void Encode(const api::CreateObjectReq& v, WireWriter& w);
void Encode(const api::CreateObjectResp& v, WireWriter& w);
void Encode(const api::SetActionReq& v, WireWriter& w);
void Encode(const api::SetActionResp& v, WireWriter& w);
void Encode(const api::SubmitBatchReq& v, WireWriter& w);
void Encode(const api::SubmitBatchResp& v, WireWriter& w);
void Encode(const api::StatsReq& v, WireWriter& w);
void Encode(const api::StatsResp& v, WireWriter& w);
void Encode(const api::SessionSnapshotReq& v, WireWriter& w);
void Encode(const api::SessionSnapshotResp& v, WireWriter& w);

Status Decode(WireReader& r, api::OpenSessionReq* v);
Status Decode(WireReader& r, api::OpenSessionResp* v);
Status Decode(WireReader& r, api::CloseSessionReq* v);
Status Decode(WireReader& r, api::CloseSessionResp* v);
Status Decode(WireReader& r, api::CreateObjectReq* v);
Status Decode(WireReader& r, api::CreateObjectResp* v);
Status Decode(WireReader& r, api::SetActionReq* v);
Status Decode(WireReader& r, api::SetActionResp* v);
Status Decode(WireReader& r, api::SubmitBatchReq* v);
Status Decode(WireReader& r, api::SubmitBatchResp* v);
Status Decode(WireReader& r, api::StatsReq* v);
Status Decode(WireReader& r, api::StatsResp* v);
Status Decode(WireReader& r, api::SessionSnapshotReq* v);
Status Decode(WireReader& r, api::SessionSnapshotResp* v);

// ---- Frame assembly --------------------------------------------------------

/// One complete request frame: header + encoded body.
template <typename Req>
std::string EncodeRequestFrame(MessageType type, std::uint32_t request_id,
                               const Req& body) {
  WireWriter w;
  Encode(body, w);
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type);
  header.request_id = request_id;
  header.payload_len = static_cast<std::uint32_t>(w.buffer().size());
  std::string out;
  out.reserve(kFrameHeaderBytes + w.buffer().size());
  EncodeHeader(header, &out);
  out.append(w.buffer());
  return out;
}

/// One complete success-response frame: header + u16 kOk + encoded body.
template <typename Resp>
std::string EncodeResponseFrame(MessageType type, std::uint32_t request_id,
                                const Resp& body) {
  WireWriter w;
  w.U16(static_cast<std::uint16_t>(api::WireCode::kOk));
  Encode(body, w);
  FrameHeader header;
  header.type = static_cast<std::uint16_t>(type) | kResponseBit;
  header.request_id = request_id;
  header.payload_len = static_cast<std::uint32_t>(w.buffer().size());
  std::string out;
  out.reserve(kFrameHeaderBytes + w.buffer().size());
  EncodeHeader(header, &out);
  out.append(w.buffer());
  return out;
}

/// One complete error-response frame: header + u16 code + diagnostic.
std::string EncodeErrorFrame(MessageType type, std::uint32_t request_id,
                             api::WireCode code, std::string_view message);

/// Splits a response payload into its code and the body view. For kOk
/// the body is the encoded response struct; otherwise `message` holds
/// the diagnostic.
struct ResponseEnvelope {
  api::WireCode code = api::WireCode::kOk;
  std::string message;
  std::string_view body;
};
Result<ResponseEnvelope> DecodeResponsePayload(std::string_view payload);

}  // namespace dbtouch::gateway

#endif  // DBTOUCH_GATEWAY_WIRE_H_
