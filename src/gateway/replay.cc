#include "gateway/replay.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <latch>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/action.h"
#include "gateway/client.h"
#include "server/frame_scheduler.h"
#include "sim/motion_profile.h"
#include "sim/touch_event.h"
#include "sim/trace_builder.h"

namespace dbtouch::gateway {

namespace {

using server::SteadyNowUs;

struct SessionPlan {
  Client client;
  api::SessionId session = 0;
  api::ObjectId object = 0;
  /// (send offset on the shared epoch, batch) — offsets are strictly
  /// increasing within a session.
  std::vector<std::pair<sim::Micros, api::SubmitBatchReq>> batches;
};

/// One send slot on a thread's merged schedule.
struct SendSlot {
  sim::Micros at_us = 0;
  std::uint32_t session_index = 0;
  std::uint32_t batch_index = 0;
};

api::WireAction ActionForSession(int index) {
  api::WireAction action;
  if (index % 2 == 0) {
    action.kind = static_cast<std::uint8_t>(core::ActionKind::kSummary);
    action.agg = 2;  // exec::AggKind::kAvg
    action.summary_k = 64;
  } else {
    action.kind = static_cast<std::uint8_t>(core::ActionKind::kScan);
  }
  return action;
}

/// Builds one session's paced timeline: `gestures` vertical slides over
/// the object frame with think-time gaps, cut into batches of
/// `batch_interval_us` of timeline each.
std::vector<std::pair<sim::Micros, api::SubmitBatchReq>> BuildBatches(
    const ReplayConfig& config, const sim::TouchDevice& device,
    api::SessionId session, const api::WireRect& frame, Rng& rng) {
  sim::TraceBuilder builder(device);
  std::vector<sim::TouchEvent> events;
  sim::Micros t = 0;
  for (int g = 0; g < config.gestures_per_session; ++g) {
    double duration_s = rng.NextDouble(config.slide_min_s, config.slide_max_s);
    // Vertical slide through the column at a random x lane; direction
    // alternates like a user scrubbing up and down.
    double x = frame.x + rng.NextDouble(0.2, 0.8) * frame.width;
    double y0 = frame.y + rng.NextDouble(0.0, 0.25) * frame.height;
    double y1 = frame.y + rng.NextDouble(0.75, 1.0) * frame.height;
    if (g % 2 == 1) std::swap(y0, y1);
    sim::GestureTrace trace = builder.Slide(
        "replay", sim::PointCm{x, y0}, sim::PointCm{x, y1},
        sim::MotionProfile::Constant(duration_s), t);
    events.insert(events.end(), trace.events.begin(), trace.events.end());
    t = trace.duration_us() +
        static_cast<sim::Micros>(
            rng.NextDouble(config.think_min_s, config.think_max_s) * 1e6);
  }

  const sim::Micros interval = config.batch_interval_us > 0
                                   ? config.batch_interval_us
                                   : device.event_interval_us();
  std::vector<std::pair<sim::Micros, api::SubmitBatchReq>> batches;
  std::size_t i = 0;
  while (i < events.size()) {
    const sim::Micros slot =
        (events[i].timestamp_us / interval) * interval;
    api::SubmitBatchReq req;
    req.session = session;
    req.paced = config.paced;
    while (i < events.size() &&
           events[i].timestamp_us < slot + interval) {
      req.events.push_back(api::ToWire(events[i]));
      ++i;
    }
    // Send when the slot's events have all "happened" on the session
    // timeline — the batch for display frame k leaves at the start of
    // frame k+1, like a real client flushing once per frame.
    batches.emplace_back(slot + interval, std::move(req));
  }
  return batches;
}

}  // namespace

ReplayHarness::ReplayHarness(ReplayConfig config)
    : config_(std::move(config)) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.sessions < 1) config_.sessions = 1;
  if (config_.threads > config_.sessions) config_.threads = config_.sessions;
}

Result<ReplayResult> ReplayHarness::Run() {
  const int num_threads = config_.threads;
  const int num_sessions = config_.sessions;
  sim::TouchDevice device(config_.device);

  std::atomic<std::int64_t> batches_sent{0};
  std::atomic<std::int64_t> events_sent{0};
  std::atomic<std::int64_t> events_accepted{0};
  std::atomic<std::int64_t> events_rejected{0};
  std::atomic<std::int64_t> errors{0};
  std::atomic<std::int64_t> snapshot_results{0};
  obs::Histogram ack_rtt_us;
  obs::Histogram send_lag_us;

  std::latch setup_done(num_threads);
  std::latch start_replay(1);
  std::latch replay_done(num_threads);
  std::latch start_teardown(1);
  std::atomic<sim::Micros> epoch{0};

  auto worker = [&](int thread_index) {
    // Interleaved slice: thread k owns sessions k, k+T, k+2T, ... so the
    // send schedules of a thread's sessions stay spread in time.
    std::vector<SessionPlan> plans;
    for (int s = thread_index; s < num_sessions; s += num_threads) {
      Rng rng(config_.seed * 0x9e3779b97f4a7c15ull + s);
      SessionPlan plan;
      if (!plan.client.Connect(config_.host, config_.port).ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      auto open = plan.client.OpenSession();
      if (!open.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      plan.session = open->session;
      api::CreateObjectReq create;
      create.session = plan.session;
      create.kind = 0;
      create.table = config_.table;
      create.column = config_.column;
      create.frame = api::WireRect{1.0, 1.0, 6.0, 12.0};
      auto object = plan.client.CreateObject(create);
      if (!object.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      plan.object = object->object;
      api::SetActionReq set;
      set.session = plan.session;
      set.object = plan.object;
      set.action = ActionForSession(s);
      if (!plan.client.SetAction(set).ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      plan.batches =
          BuildBatches(config_, device, plan.session, create.frame, rng);
      plans.push_back(std::move(plan));
    }

    // Merge the slice's per-session schedules into one ordered send list.
    std::vector<SendSlot> schedule;
    for (std::uint32_t p = 0; p < plans.size(); ++p) {
      for (std::uint32_t b = 0; b < plans[p].batches.size(); ++b) {
        schedule.push_back(SendSlot{plans[p].batches[b].first, p, b});
      }
    }
    std::stable_sort(schedule.begin(), schedule.end(),
                     [](const SendSlot& a, const SendSlot& b) {
                       return a.at_us < b.at_us;
                     });

    setup_done.count_down();
    start_replay.wait();
    const sim::Micros t0 = epoch.load(std::memory_order_acquire);

    for (const SendSlot& slot : schedule) {
      SessionPlan& plan = plans[slot.session_index];
      if (!plan.client.connected()) continue;
      if (config_.pace_sends) {
        const sim::Micros due = t0 + slot.at_us;
        sim::Micros now = SteadyNowUs();
        if (now < due) {
          std::this_thread::sleep_for(std::chrono::microseconds(due - now));
          now = SteadyNowUs();
        }
        send_lag_us.Record(now > due ? now - due : 0);
      }
      api::SubmitBatchReq& req = plan.batches[slot.batch_index].second;
      const sim::Micros before = SteadyNowUs();
      auto resp = plan.client.SubmitBatch(req);
      const sim::Micros after = SteadyNowUs();
      if (!resp.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        plan.client.Close();
        continue;
      }
      ack_rtt_us.Record(after - before);
      batches_sent.fetch_add(1, std::memory_order_relaxed);
      events_sent.fetch_add(static_cast<std::int64_t>(req.events.size()),
                            std::memory_order_relaxed);
      events_accepted.fetch_add(resp->accepted, std::memory_order_relaxed);
      events_rejected.fetch_add(resp->rejected, std::memory_order_relaxed);
    }

    replay_done.count_down();
    start_teardown.wait();

    for (SessionPlan& plan : plans) {
      if (!plan.client.connected()) continue;
      if (config_.snapshot_tail > 0) {
        api::SessionSnapshotReq req;
        req.session = plan.session;
        req.max_results = config_.snapshot_tail;
        auto snap = plan.client.SessionSnapshot(req);
        if (snap.ok()) {
          snapshot_results.fetch_add(snap->result_count,
                                     std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (!plan.client.CloseSession(plan.session).ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      plan.client.Close();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) threads.emplace_back(worker, i);

  setup_done.wait();
  const sim::Micros t0 = SteadyNowUs();
  epoch.store(t0, std::memory_order_release);
  start_replay.count_down();
  replay_done.wait();
  const double replay_wall_s = (SteadyNowUs() - t0) / 1e6;

  // Drain over the wire, then read the server's roll-up before the
  // teardown phase closes sessions (closing drops nothing once idle).
  ReplayResult result;
  {
    Client observer;
    Status st = observer.Connect(config_.host, config_.port);
    if (st.ok()) st = observer.WaitIdle();
    if (st.ok()) {
      auto stats = observer.Stats();
      if (stats.ok()) {
        result.server_stats = *stats;
      } else {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      errors.fetch_add(1, std::memory_order_relaxed);
    }
  }
  start_teardown.count_down();
  for (auto& thread : threads) thread.join();

  result.sessions = num_sessions;
  result.batches_sent = batches_sent.load();
  result.events_sent = events_sent.load();
  result.events_accepted = events_accepted.load();
  result.events_rejected = events_rejected.load();
  result.errors = errors.load();
  result.snapshot_results = snapshot_results.load();
  result.ack_rtt_us = ack_rtt_us.Snapshot();
  result.send_lag_us = send_lag_us.Snapshot();
  result.replay_wall_s = replay_wall_s;
  return result;
}

}  // namespace dbtouch::gateway
