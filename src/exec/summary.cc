#include "exec/summary.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::exec {

InteractiveSummaryOp::InteractiveSummaryOp(storage::ColumnView column,
                                           std::int64_t k, AggKind kind)
    : cursor_(column), k_(k), kind_(kind) {
  DBTOUCH_CHECK(k >= 0);
}

InteractiveSummaryOp::InteractiveSummaryOp(
    std::shared_ptr<storage::PagedColumnSource> source, std::int64_t k,
    AggKind kind)
    : cursor_(std::move(source)), k_(k), kind_(kind) {
  DBTOUCH_CHECK(k >= 0);
}

SummaryResult InteractiveSummaryOp::ComputeAt(storage::RowId center) const {
  SummaryResult out;
  const std::int64_t n = cursor_.row_count();
  if (n == 0) {
    return out;
  }
  out.center = std::clamp<storage::RowId>(center, 0, n - 1);
  out.first = std::max<storage::RowId>(out.center - k_, 0);
  out.last = std::min<storage::RowId>(out.center + k_, n - 1);
  RunningAggregate agg(kind_);
  // Block-at-a-time over the window: each pinned block's slice aggregates
  // through a tight local loop, rows in ascending order (so the paged and
  // unpaged paths produce bit-identical floating-point results).
  cursor_.Scan(out.first, out.last,
               [&agg](const storage::ColumnView& rows, storage::RowId) {
                 const std::int64_t count = rows.row_count();
                 for (std::int64_t i = 0; i < count; ++i) {
                   agg.Add(rows.GetAsDouble(i));
                 }
               });
  out.rows = agg.count();
  out.value = agg.value();
  rows_scanned_ += out.rows;
  return out;
}

}  // namespace dbtouch::exec
