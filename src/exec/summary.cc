#include "exec/summary.h"

#include <algorithm>
#include <limits>

#include "common/macros.h"
#include "exec/span_kernels.h"

namespace dbtouch::exec {

InteractiveSummaryOp::InteractiveSummaryOp(storage::ColumnView column,
                                           std::int64_t k, AggKind kind)
    : cursor_(column), k_(k), kind_(kind) {
  DBTOUCH_CHECK(k >= 0);
}

InteractiveSummaryOp::InteractiveSummaryOp(
    std::shared_ptr<storage::PagedColumnSource> source, std::int64_t k,
    AggKind kind)
    : cursor_(std::move(source)), k_(k), kind_(kind) {
  DBTOUCH_CHECK(k >= 0);
}

SummaryResult InteractiveSummaryOp::ComputeAt(storage::RowId center) const {
  SummaryResult out;
  const std::int64_t n = cursor_.row_count();
  if (n == 0) {
    return out;
  }
  out.center = std::clamp<storage::RowId>(center, 0, n - 1);
  out.first = std::max<storage::RowId>(out.center - k_, 0);
  out.last = std::min<storage::RowId>(out.center + k_, n - 1);
  // Block-at-a-time over the window, span-vectorized where the block is a
  // contiguous numeric span. min/max/count are order-independent, so they
  // run through the SIMD MinMaxSpan kernel; every other kind is
  // order-dependent (sum/avg/Welford) and runs the sequential
  // AggregateSpan loop. Both replay RunningAggregate's exact update
  // semantics, so the paged, unpaged, and vectorized paths all produce
  // bit-identical results; string/strided blocks fall back to the per-row
  // loop below.
  if (kind_ == AggKind::kCount || kind_ == AggKind::kMin ||
      kind_ == AggKind::kMax) {
    MinMaxState state;
    cursor_.Scan(out.first, out.last,
                 [&state](const storage::ColumnView& rows, storage::RowId) {
                   if (MinMaxSpan(rows, &state)) {
                     return;
                   }
                   const std::int64_t count = rows.row_count();
                   for (std::int64_t i = 0; i < count; ++i) {
                     const double v = rows.GetAsDouble(i);
                     ++state.count;
                     if (v < state.min) {
                       state.min = v;
                     }
                     if (v > state.max) {
                       state.max = v;
                     }
                   }
                 });
    out.rows = state.count;
    // Mirrors RunningAggregate::value() for these kinds.
    if (kind_ == AggKind::kCount) {
      out.value = static_cast<double>(state.count);
    } else if (state.count == 0) {
      out.value = std::numeric_limits<double>::quiet_NaN();
    } else {
      out.value = kind_ == AggKind::kMin ? state.min : state.max;
    }
  } else {
    RunningAggregate agg(kind_);
    cursor_.Scan(out.first, out.last,
                 [&agg](const storage::ColumnView& rows, storage::RowId) {
                   if (AggregateSpan(rows, &agg)) {
                     return;
                   }
                   const std::int64_t count = rows.row_count();
                   for (std::int64_t i = 0; i < count; ++i) {
                     agg.Add(rows.GetAsDouble(i));
                   }
                 });
    out.rows = agg.count();
    out.value = agg.value();
  }
  rows_scanned_ += out.rows;
  return out;
}

}  // namespace dbtouch::exec
