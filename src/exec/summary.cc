#include "exec/summary.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::exec {

InteractiveSummaryOp::InteractiveSummaryOp(storage::ColumnView column,
                                           std::int64_t k, AggKind kind)
    : column_(column), k_(k), kind_(kind) {
  DBTOUCH_CHECK(k >= 0);
}

SummaryResult InteractiveSummaryOp::ComputeAt(storage::RowId center) const {
  SummaryResult out;
  const std::int64_t n = column_.row_count();
  if (n == 0) {
    return out;
  }
  out.center = std::clamp<storage::RowId>(center, 0, n - 1);
  out.first = std::max<storage::RowId>(out.center - k_, 0);
  out.last = std::min<storage::RowId>(out.center + k_, n - 1);
  RunningAggregate agg(kind_);
  for (storage::RowId r = out.first; r <= out.last; ++r) {
    agg.Add(column_.GetAsDouble(r));
  }
  out.rows = agg.count();
  out.value = agg.value();
  rows_scanned_ += out.rows;
  return out;
}

}  // namespace dbtouch::exec
