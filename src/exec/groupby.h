// Incremental hash group-by. Like the join, grouping in dbTouch cannot
// block on its full input (Section 2.9: "the same is true for hash-based
// grouping"); groups accrete as the user touches tuples, and the current
// group table is inspectable at any instant.

#ifndef DBTOUCH_EXEC_GROUPBY_H_
#define DBTOUCH_EXEC_GROUPBY_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/aggregate.h"
#include "storage/column.h"
#include "storage/types.h"

namespace dbtouch::exec {

struct GroupResult {
  std::int64_t key = 0;
  std::int64_t count = 0;
  double value = 0.0;
};

class IncrementalGroupBy {
 public:
  /// Groups `values` by the integer (or dictionary-code) `keys` column,
  /// aggregating with `kind`.
  IncrementalGroupBy(storage::ColumnView keys, storage::ColumnView values,
                     AggKind kind);

  /// Feeds the touched row; revisited rows are no-ops. Returns true when
  /// the row was new and contributed to its group.
  bool Feed(storage::RowId row);

  /// Groups seen so far, sorted by key.
  std::vector<GroupResult> Snapshot() const;

  std::int64_t num_groups() const {
    return static_cast<std::int64_t>(groups_.size());
  }
  std::int64_t rows_fed() const {
    return static_cast<std::int64_t>(seen_.size());
  }

 private:
  storage::ColumnView keys_;
  storage::ColumnView values_;
  AggKind kind_;
  std::unordered_map<std::int64_t, RunningAggregate> groups_;
  std::unordered_set<storage::RowId> seen_;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_GROUPBY_H_
