// Incremental hash group-by. Like the join, grouping in dbTouch cannot
// block on its full input (Section 2.9: "the same is true for hash-based
// grouping"); groups accrete as the user touches tuples, and the current
// group table is inspectable at any instant.
//
// Reads go through PagedColumnCursors regardless of how the operator was
// constructed: a raw ColumnView is wrapped in a zero-copy
// UnpagedColumnSource, a paged source (spilled / cold-tier tables, whose
// matrix may not exist at all) pins pool blocks. One read path, any tier.

#ifndef DBTOUCH_EXEC_GROUPBY_H_
#define DBTOUCH_EXEC_GROUPBY_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "exec/aggregate.h"
#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::exec {

struct GroupResult {
  std::int64_t key = 0;
  std::int64_t count = 0;
  double value = 0.0;
};

class IncrementalGroupBy {
 public:
  /// Groups `values` by the integer (or dictionary-code) `keys` column,
  /// aggregating with `kind`.
  IncrementalGroupBy(storage::ColumnView keys, storage::ColumnView values,
                     AggKind kind);

  /// Paged form: key and value reads pin blocks of the sources. Each
  /// cursor keeps the block under the touch pinned, so a slide inside
  /// one block re-pins nothing.
  IncrementalGroupBy(std::shared_ptr<storage::PagedColumnSource> keys,
                     std::shared_ptr<storage::PagedColumnSource> values,
                     AggKind kind);

  /// Feeds the touched row; revisited rows are no-ops. Returns true when
  /// the row was new and contributed to its group.
  bool Feed(storage::RowId row);

  /// Integer key of `row` (dictionary code for string keys) read through
  /// the operator's own backing — the kernel surfaces the touched
  /// tuple's group without needing its own raw view.
  std::int64_t KeyAt(storage::RowId row);

  /// Groups seen so far, sorted by key.
  std::vector<GroupResult> Snapshot() const;

  std::int64_t num_groups() const {
    return static_cast<std::int64_t>(groups_.size());
  }
  std::int64_t rows_fed() const {
    return static_cast<std::int64_t>(seen_.size());
  }

  /// Drops the working pins — called on gesture pause so an idle session
  /// holds no buffer-pool blocks (free for zero-copy backings).
  void ReleasePins() {
    keys_.ReleasePin();
    values_.ReleasePin();
  }

 private:
  storage::PagedColumnCursor keys_;
  storage::PagedColumnCursor values_;
  AggKind kind_;
  std::unordered_map<std::int64_t, RunningAggregate> groups_;
  std::unordered_set<storage::RowId> seen_;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_GROUPBY_H_
