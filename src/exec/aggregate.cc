#include "exec/aggregate.h"

#include <cmath>

namespace dbtouch::exec {

std::string_view AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
    case AggKind::kVariance:
      return "variance";
    case AggKind::kStdDev:
      return "stddev";
  }
  return "?";
}

double RunningAggregate::value() const {
  if (kind_ == AggKind::kCount) {
    return static_cast<double>(count_);
  }
  if (count_ == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  switch (kind_) {
    case AggKind::kSum:
      return sum_;
    case AggKind::kAvg:
      return mean_;
    case AggKind::kMin:
      return min_;
    case AggKind::kMax:
      return max_;
    case AggKind::kVariance:
      return m2_ / static_cast<double>(count_);
    case AggKind::kStdDev:
      return std::sqrt(m2_ / static_cast<double>(count_));
    case AggKind::kCount:
      break;  // Handled above.
  }
  return std::numeric_limits<double>::quiet_NaN();
}

void RunningAggregate::Reset() {
  count_ = 0;
  sum_ = 0.0;
  mean_ = 0.0;
  m2_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

bool TouchedAggregateOp::Feed(storage::RowId row) {
  if (!cursor_.InRange(row)) {
    return false;
  }
  if (!seen_.insert(row).second) {
    return false;
  }
  agg_.Add(cursor_.GetAsDouble(row));
  return true;
}

std::int64_t TouchedAggregateOp::FeedRange(storage::RowId first,
                                           storage::RowId last) {
  if (!cursor_.valid() || cursor_.row_count() == 0) {
    return 0;
  }
  std::int64_t added = 0;
  cursor_.Scan(first, last,
               [&](const storage::ColumnView& rows, storage::RowId base) {
                 const std::int64_t count = rows.row_count();
                 for (std::int64_t i = 0; i < count; ++i) {
                   if (seen_.insert(base + i).second) {
                     agg_.Add(rows.GetAsDouble(i));
                     ++added;
                   }
                 }
               });
  return added;
}

double TouchedAggregateOp::coverage() const {
  if (cursor_.row_count() == 0) {
    return 0.0;
  }
  return static_cast<double>(seen_.size()) /
         static_cast<double>(cursor_.row_count());
}

void TouchedAggregateOp::Reset() {
  agg_.Reset();
  seen_.clear();
}

}  // namespace dbtouch::exec
