// Interactive summaries (paper Section 2.7): "when during a slide we
// register position p which corresponds to tuple identifier idp, then
// dbTouch scans all entries within the tuple identifier range
// [idp-k, idp+k] and calculates a single aggregate value."

#ifndef DBTOUCH_EXEC_SUMMARY_H_
#define DBTOUCH_EXEC_SUMMARY_H_

#include <cstdint>
#include <memory>
#include <utility>

#include "exec/aggregate.h"
#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::exec {

struct SummaryResult {
  storage::RowId center = 0;
  storage::RowId first = 0;   // inclusive
  storage::RowId last = 0;    // inclusive
  std::int64_t rows = 0;      // entries aggregated
  double value = 0.0;
};

class InteractiveSummaryOp {
 public:
  /// `k`: half-width of the summary window. "A good default choice is to
  /// perform an average aggregation" — so kAvg is the default kind.
  InteractiveSummaryOp(storage::ColumnView column, std::int64_t k,
                       AggKind kind = AggKind::kAvg);
  /// Paged form: the window is scanned block-at-a-time through pinned
  /// blocks of `source` (the BufferManager read path) instead of a raw
  /// whole-column pointer. Same results, bounded residency.
  InteractiveSummaryOp(std::shared_ptr<storage::PagedColumnSource> source,
                       std::int64_t k, AggKind kind = AggKind::kAvg);

  /// Summary of the window centred at `center`, clamped to the column.
  SummaryResult ComputeAt(storage::RowId center) const;

  std::int64_t k() const { return k_; }
  AggKind kind() const { return kind_; }

  /// Total entries scanned across all ComputeAt calls (cost accounting
  /// for the benchmarks).
  std::int64_t rows_scanned() const { return rows_scanned_; }

 private:
  mutable storage::PagedColumnCursor cursor_;
  std::int64_t k_;
  AggKind kind_;
  mutable std::int64_t rows_scanned_ = 0;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_SUMMARY_H_
