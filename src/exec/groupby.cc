#include "exec/groupby.h"

#include <algorithm>
#include <utility>

#include "common/macros.h"

namespace dbtouch::exec {

namespace {

bool IntegerKeyType(storage::DataType type) {
  return type != storage::DataType::kFloat &&
         type != storage::DataType::kDouble;
}

}  // namespace

IncrementalGroupBy::IncrementalGroupBy(storage::ColumnView keys,
                                       storage::ColumnView values,
                                       AggKind kind)
    : keys_(keys), values_(values), kind_(kind) {
  DBTOUCH_CHECK(keys.row_count() == values.row_count());
  DBTOUCH_CHECK(IntegerKeyType(keys.type()));
}

IncrementalGroupBy::IncrementalGroupBy(
    std::shared_ptr<storage::PagedColumnSource> keys,
    std::shared_ptr<storage::PagedColumnSource> values, AggKind kind)
    : keys_(std::move(keys)), values_(std::move(values)), kind_(kind) {
  DBTOUCH_CHECK(keys_.row_count() == values_.row_count());
  DBTOUCH_CHECK(IntegerKeyType(keys_.type()));
}

std::int64_t IncrementalGroupBy::KeyAt(storage::RowId row) {
  return keys_.type() == storage::DataType::kInt64 ? keys_.GetInt64(row)
                                                   : keys_.GetInt32(row);
}

bool IncrementalGroupBy::Feed(storage::RowId row) {
  if (!keys_.InRange(row)) {
    return false;
  }
  if (!seen_.insert(row).second) {
    return false;
  }
  const std::int64_t key = KeyAt(row);
  auto [it, inserted] = groups_.try_emplace(key, kind_);
  it->second.Add(values_.GetAsDouble(row));
  return true;
}

std::vector<GroupResult> IncrementalGroupBy::Snapshot() const {
  std::vector<GroupResult> out;
  out.reserve(groups_.size());
  for (const auto& [key, agg] : groups_) {
    out.push_back(GroupResult{key, agg.count(), agg.value()});
  }
  std::sort(out.begin(), out.end(),
            [](const GroupResult& a, const GroupResult& b) {
              return a.key < b.key;
            });
  return out;
}

}  // namespace dbtouch::exec
