// Block-at-a-time kernels over contiguous typed spans (MonetDB/X100-style
// vectorized execution; ROADMAP item 3).
//
// Every kernel here is an accelerated replay of an existing per-row path
// and must stay BIT-IDENTICAL to it — the tier-parity battery compares
// gesture answers across scalar-cursor and span-vectorized backends with
// exact double bit patterns. Two disciplines make that possible:
//
//   1. Order-independent ops (min/max/count, predicate compares) may use
//      SIMD freely: min/max are computed in the column's NATIVE domain and
//      converted once at the end. Since every native->double conversion we
//      use is monotone, conv(min(S)) == min over converted values, bit for
//      bit. Predicate compares happen in the double domain with the exact
//      conversions GetAsDouble performs, so the pass set is identical.
//   2. Order-dependent ops (sum/avg and Welford variance) stay sequential:
//      AggregateSpan runs a tight per-type loop that feeds the SAME inlined
//      RunningAggregate::Add as the cursor path — the win is hoisting the
//      per-row residency check and type switch out of the loop, not
//      reassociating floating-point math.
//
// String/dictionary columns and strided (row-major) views are NOT handled:
// every kernel returns false for them and the caller falls back to the
// per-row cursor path. Same at ragged block edges — the callers pass
// whatever slice the scan hands them; a slice of a contiguous block is
// still contiguous, so only genuinely non-span layouts fall back.

#ifndef DBTOUCH_EXEC_SPAN_KERNELS_H_
#define DBTOUCH_EXEC_SPAN_KERNELS_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "exec/aggregate.h"
#include "exec/predicate.h"
#include "storage/column.h"
#include "storage/types.h"

namespace dbtouch::exec {

/// Instruction-set tier the span kernels dispatch to at runtime.
enum class SimdLevel : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
};

std::string_view SimdLevelName(SimdLevel level);

/// The tier kernels will use: hardware-detected AVX2 where available,
/// overridable with DBTOUCH_SIMD=scalar|avx2 in the environment (requests
/// above hardware support clamp down to scalar).
SimdLevel ActiveSimdLevel();

/// Forces the dispatch tier for parity tests. kAvx2 is clamped to
/// hardware support; pass ActiveSimdLevel()'s original value to restore.
void SetSimdLevelForTest(SimdLevel level);

/// Streaming min/max/count accumulator state, in the double domain
/// RunningAggregate uses. Feed spans with MinMaxSpan; the fields follow
/// RunningAggregate's conventions (count counts every value fed, min/max
/// skip NaNs the way `if (v < min_)` does).
struct MinMaxState {
  std::int64_t count = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
};

/// Accumulates `view`'s values into `acc` exactly as feeding
/// GetAsDouble(row) for every row through RunningAggregate would update
/// (count_, min_, max_). Returns false — with `acc` untouched — when the
/// view is not a contiguous numeric span (caller falls back to the
/// cursor path). One caveat: when a double span mixes -0.0 and +0.0 as
/// its extreme value, which zero's bit pattern survives depends on lane
/// partitioning (they compare equal, so `if (v < min_)` never replaces
/// one with the other); the numeric value is identical either way.
bool MinMaxSpan(const storage::ColumnView& view, MinMaxState* acc);

/// Feeds every value of `view` (ascending row order) into `agg` through
/// the same inlined Add the cursor path uses: bit-identical for every
/// AggKind, including the order-dependent sum/avg/variance. Returns
/// false — `agg` untouched — for non-contiguous/string views.
bool AggregateSpan(const storage::ColumnView& view, RunningAggregate* agg);

/// Filters `view` against `predicate` with the exact double-domain
/// comparison Predicate::Matches performs: appends base row ids
/// `first_row + i` for every matching value i to `out_rows` (null =
/// count only) and adds the match count to `*rows_passed`. Returns false
/// — outputs untouched — for non-contiguous/string views.
bool FilterSpan(const storage::ColumnView& view, const Predicate& predicate,
                storage::RowId first_row,
                std::vector<storage::RowId>* out_rows,
                std::int64_t* rows_passed);

/// Refines an existing selection: appends to `out_rows` every view-local
/// row index in `in_rows` whose value matches. `out_rows` must not alias
/// `in_rows`. Returns false — `out_rows` untouched — for
/// non-contiguous/string views.
bool FilterSelected(const storage::ColumnView& view,
                    const Predicate& predicate,
                    const std::vector<storage::RowId>& in_rows,
                    std::vector<storage::RowId>* out_rows);

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_SPAN_KERNELS_H_
