#include "exec/predicate.h"

#include <cstdio>
#include <limits>

namespace dbtouch::exec {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

bool Predicate::Matches(double v) const {
  switch (op_) {
    case CompareOp::kLt:
      return v < lo_;
    case CompareOp::kLe:
      return v <= lo_;
    case CompareOp::kEq:
      return v == lo_;
    case CompareOp::kNe:
      return v != lo_;
    case CompareOp::kGe:
      return v >= lo_;
    case CompareOp::kGt:
      return v > lo_;
    case CompareOp::kBetween:
      return v >= lo_ && v <= hi_;
  }
  return false;
}

Predicate::Interval Predicate::ValueInterval() const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  switch (op_) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return {-kInf, lo_};
    case CompareOp::kEq:
      return {lo_, lo_};
    case CompareOp::kNe:
      return {-kInf, kInf};
    case CompareOp::kGe:
    case CompareOp::kGt:
      return {lo_, kInf};
    case CompareOp::kBetween:
      return {lo_, hi_};
  }
  return {-kInf, kInf};
}

std::string Predicate::ToString() const {
  char buf[96];
  if (op_ == CompareOp::kBetween) {
    std::snprintf(buf, sizeof(buf), "between %g and %g", lo_, hi_);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %g",
                  std::string(CompareOpName(op_)).c_str(), lo_);
  }
  return buf;
}

bool FilteredScanOp::Feed(storage::RowId row) {
  if (!cursor_.InRange(row)) {
    return false;
  }
  ++rows_fed_;
  if (predicate_.Matches(cursor_.GetAsDouble(row))) {
    ++rows_passed_;
    return true;
  }
  return false;
}

}  // namespace dbtouch::exec
