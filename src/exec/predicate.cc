#include "exec/predicate.h"

#include <cstdio>
#include <limits>

#include "exec/span_kernels.h"

namespace dbtouch::exec {

std::string_view CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kEq:
      return "==";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kBetween:
      return "between";
  }
  return "?";
}

bool Predicate::Matches(double v) const {
  switch (op_) {
    case CompareOp::kLt:
      return v < lo_;
    case CompareOp::kLe:
      return v <= lo_;
    case CompareOp::kEq:
      return v == lo_;
    case CompareOp::kNe:
      return v != lo_;
    case CompareOp::kGe:
      return v >= lo_;
    case CompareOp::kGt:
      return v > lo_;
    case CompareOp::kBetween:
      return v >= lo_ && v <= hi_;
  }
  return false;
}

Predicate::Interval Predicate::ValueInterval() const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  switch (op_) {
    case CompareOp::kLt:
    case CompareOp::kLe:
      return {-kInf, lo_};
    case CompareOp::kEq:
      return {lo_, lo_};
    case CompareOp::kNe:
      return {-kInf, kInf};
    case CompareOp::kGe:
    case CompareOp::kGt:
      return {lo_, kInf};
    case CompareOp::kBetween:
      return {lo_, hi_};
  }
  return {-kInf, kInf};
}

std::string Predicate::ToString() const {
  char buf[96];
  if (op_ == CompareOp::kBetween) {
    std::snprintf(buf, sizeof(buf), "between %g and %g", lo_, hi_);
  } else {
    std::snprintf(buf, sizeof(buf), "%s %g",
                  std::string(CompareOpName(op_)).c_str(), lo_);
  }
  return buf;
}

bool FilteredScanOp::Feed(storage::RowId row) {
  if (!cursor_.InRange(row)) {
    return false;
  }
  ++rows_fed_;
  if (predicate_.Matches(cursor_.GetAsDouble(row))) {
    ++rows_passed_;
    return true;
  }
  return false;
}

std::int64_t FilteredScanOp::FeedRange(
    storage::RowId first, storage::RowId last,
    std::vector<storage::RowId>* out_rows) {
  std::int64_t passed = 0;
  cursor_.Scan(first, last,
               [&](const storage::ColumnView& rows, storage::RowId base) {
                 rows_fed_ += rows.row_count();
                 if (FilterSpan(rows, predicate_, base, out_rows, &passed)) {
                   return;
                 }
                 const std::int64_t count = rows.row_count();
                 for (std::int64_t i = 0; i < count; ++i) {
                   if (predicate_.Matches(rows.GetAsDouble(i))) {
                     if (out_rows != nullptr) {
                       out_rows->push_back(base + i);
                     }
                     ++passed;
                   }
                 }
               });
  rows_passed_ += passed;
  return passed;
}

}  // namespace dbtouch::exec
