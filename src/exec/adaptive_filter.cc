#include "exec/adaptive_filter.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace dbtouch::exec {

AdaptiveConjunctionOp::AdaptiveConjunctionOp(
    std::vector<Term> terms, std::int64_t row_count,
    const AdaptiveConjunctionConfig& config)
    : terms_(std::move(terms)), row_count_(row_count), config_(config) {
  DBTOUCH_CHECK(!terms_.empty());
  DBTOUCH_CHECK(config_.num_regions > 0);
  for (const Term& t : terms_) {
    DBTOUCH_CHECK(t.column.row_count() == row_count_);
  }
  stats_.assign(static_cast<std::size_t>(config_.num_regions),
                std::vector<TermStats>(terms_.size()));
}

std::int64_t AdaptiveConjunctionOp::RegionOf(storage::RowId row) const {
  if (row_count_ == 0) {
    return 0;
  }
  const std::int64_t region = row * config_.num_regions / row_count_;
  return std::clamp<std::int64_t>(region, 0, config_.num_regions - 1);
}

std::vector<std::size_t> AdaptiveConjunctionOp::RegionOrder(
    std::int64_t region) const {
  DBTOUCH_CHECK(region >= 0 && region < config_.num_regions);
  const auto& region_stats = stats_[static_cast<std::size_t>(region)];
  std::vector<std::size_t> order(terms_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Most selective (lowest pass rate) first. Terms still warming up keep
  // their declaration position via a neutral pass rate of 1.0, which
  // sorts after any measured term — they get evaluated (and thus warmed)
  // when earlier terms pass.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const TermStats& sa = region_stats[a];
                     const TermStats& sb = region_stats[b];
                     const double ra = sa.evaluated >= config_.warmup_evals
                                           ? sa.pass_rate()
                                           : 1.0;
                     const double rb = sb.evaluated >= config_.warmup_evals
                                           ? sb.pass_rate()
                                           : 1.0;
                     return ra < rb;
                   });
  return order;
}

bool AdaptiveConjunctionOp::Feed(storage::RowId row) {
  if (row < 0 || row >= row_count_) {
    return false;
  }
  ++rows_fed_;
  const std::int64_t region = RegionOf(row);
  auto& region_stats = stats_[static_cast<std::size_t>(region)];
  const std::vector<std::size_t> order = RegionOrder(region);
  for (const std::size_t t : order) {
    ++evaluations_;
    ++region_stats[t].evaluated;
    const bool pass =
        terms_[t].predicate.Matches(terms_[t].column.GetAsDouble(row));
    if (pass) {
      ++region_stats[t].passed;
    } else {
      return false;  // Short-circuit.
    }
  }
  ++rows_passed_;
  return true;
}

}  // namespace dbtouch::exec
