#include "exec/adaptive_filter.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"
#include "exec/span_kernels.h"

namespace dbtouch::exec {

AdaptiveConjunctionOp::AdaptiveConjunctionOp(
    std::vector<Term> terms, std::int64_t row_count,
    const AdaptiveConjunctionConfig& config)
    : terms_(std::move(terms)), row_count_(row_count), config_(config) {
  DBTOUCH_CHECK(!terms_.empty());
  DBTOUCH_CHECK(config_.num_regions > 0);
  for (const Term& t : terms_) {
    DBTOUCH_CHECK(t.column.row_count() == row_count_);
  }
  stats_.assign(static_cast<std::size_t>(config_.num_regions),
                std::vector<TermStats>(terms_.size()));
}

std::int64_t AdaptiveConjunctionOp::RegionOf(storage::RowId row) const {
  if (row_count_ == 0) {
    return 0;
  }
  const std::int64_t region = row * config_.num_regions / row_count_;
  return std::clamp<std::int64_t>(region, 0, config_.num_regions - 1);
}

std::vector<std::size_t> AdaptiveConjunctionOp::RegionOrder(
    std::int64_t region) const {
  DBTOUCH_CHECK(region >= 0 && region < config_.num_regions);
  const auto& region_stats = stats_[static_cast<std::size_t>(region)];
  std::vector<std::size_t> order(terms_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Most selective (lowest pass rate) first. Terms still warming up keep
  // their declaration position via a neutral pass rate of 1.0, which
  // sorts after any measured term — they get evaluated (and thus warmed)
  // when earlier terms pass.
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     const TermStats& sa = region_stats[a];
                     const TermStats& sb = region_stats[b];
                     const double ra = sa.evaluated >= config_.warmup_evals
                                           ? sa.pass_rate()
                                           : 1.0;
                     const double rb = sb.evaluated >= config_.warmup_evals
                                           ? sb.pass_rate()
                                           : 1.0;
                     return ra < rb;
                   });
  return order;
}

bool AdaptiveConjunctionOp::Feed(storage::RowId row) {
  if (row < 0 || row >= row_count_) {
    return false;
  }
  ++rows_fed_;
  const std::int64_t region = RegionOf(row);
  auto& region_stats = stats_[static_cast<std::size_t>(region)];
  const std::vector<std::size_t> order = RegionOrder(region);
  for (const std::size_t t : order) {
    ++evaluations_;
    ++region_stats[t].evaluated;
    const bool pass =
        terms_[t].predicate.Matches(terms_[t].column.GetAsDouble(row));
    if (pass) {
      ++region_stats[t].passed;
    } else {
      return false;  // Short-circuit.
    }
  }
  ++rows_passed_;
  return true;
}

std::int64_t AdaptiveConjunctionOp::FeedRange(
    storage::RowId first, storage::RowId last,
    std::vector<storage::RowId>* out_rows) {
  first = std::max<storage::RowId>(first, 0);
  last = std::min<storage::RowId>(last, row_count_ - 1);
  std::int64_t total_passed = 0;
  std::vector<storage::RowId> sel;
  std::vector<storage::RowId> next;
  for (storage::RowId seg_first = first; seg_first <= last;) {
    const std::int64_t region = RegionOf(seg_first);
    // First row of the next region: rows r with RegionOf(r) == region are
    // exactly those with r * num_regions / row_count_ == region.
    const storage::RowId next_region_first =
        ((region + 1) * row_count_ + config_.num_regions - 1) /
        config_.num_regions;
    const storage::RowId seg_last =
        std::min<storage::RowId>(last, next_region_first - 1);
    const std::int64_t seg_rows = seg_last - seg_first + 1;
    rows_fed_ += seg_rows;
    auto& region_stats = stats_[static_cast<std::size_t>(region)];
    const std::vector<std::size_t> order = RegionOrder(region);
    sel.clear();
    bool have_sel = false;
    for (const std::size_t t : order) {
      const std::int64_t in_count =
          have_sel ? static_cast<std::int64_t>(sel.size()) : seg_rows;
      if (in_count == 0) {
        break;  // Short-circuit: later terms see no candidates.
      }
      const Term& term = terms_[t];
      next.clear();
      if (!have_sel) {
        const storage::ColumnView slice =
            term.column.Slice(seg_first, seg_rows);
        std::int64_t span_passed = 0;
        if (!FilterSpan(slice, term.predicate, seg_first, &next,
                        &span_passed)) {
          for (storage::RowId r = seg_first; r <= seg_last; ++r) {
            if (term.predicate.Matches(term.column.GetAsDouble(r))) {
              next.push_back(r);
            }
          }
        }
        have_sel = true;
      } else {
        // Base row ids double as view-local indices: terms hold
        // whole-column views.
        if (!FilterSelected(term.column, term.predicate, sel, &next)) {
          for (const storage::RowId r : sel) {
            if (term.predicate.Matches(term.column.GetAsDouble(r))) {
              next.push_back(r);
            }
          }
        }
      }
      evaluations_ += in_count;
      region_stats[t].evaluated += in_count;
      region_stats[t].passed += static_cast<std::int64_t>(next.size());
      sel.swap(next);
    }
    rows_passed_ += static_cast<std::int64_t>(sel.size());
    total_passed += static_cast<std::int64_t>(sel.size());
    if (out_rows != nullptr) {
      out_rows->insert(out_rows->end(), sel.begin(), sel.end());
    }
    seg_first = seg_last + 1;
  }
  return total_passed;
}

}  // namespace dbtouch::exec
