// Adaptive multi-predicate evaluation (paper Section 2.9 "Optimization"):
// "in a dbTouch system we do not know up front how much data we are going
// to process ... for different parts of the data in the same table,
// different properties may apply. In this way, dbTouch brings an
// interesting scenario for adaptive optimization approaches that
// interleave with query execution."
//
// AdaptiveConjunctionOp evaluates a conjunction of predicates over the
// rows the user touches. It partitions the rowid space into regions and
// keeps per-region pass-rate statistics for every term; within each
// region, terms are evaluated most-selective-first, so the order adapts
// as the slide crosses regions with different data properties — without
// ever seeing data the user did not touch.

#ifndef DBTOUCH_EXEC_ADAPTIVE_FILTER_H_
#define DBTOUCH_EXEC_ADAPTIVE_FILTER_H_

#include <cstdint>
#include <vector>

#include "exec/predicate.h"
#include "storage/column.h"
#include "storage/types.h"

namespace dbtouch::exec {

struct AdaptiveConjunctionConfig {
  /// Regions the rowid space is split into (per-region statistics).
  std::int64_t num_regions = 64;
  /// Evaluations of a term within a region before its observed pass rate
  /// is trusted for ordering (before that, declaration order is used).
  std::int64_t warmup_evals = 16;
};

class AdaptiveConjunctionOp {
 public:
  struct Term {
    storage::ColumnView column;
    Predicate predicate;
  };

  /// All columns must have `row_count` rows.
  AdaptiveConjunctionOp(std::vector<Term> terms, std::int64_t row_count,
                        const AdaptiveConjunctionConfig& config = {});

  /// Evaluates the conjunction at `row` with short-circuiting in the
  /// region's current best order. Returns true when every term passes.
  bool Feed(storage::RowId row);

  /// Vectorized conjunction over rows [first, last] (clamped): refines a
  /// selection vector term by term — the first term filters whole
  /// contiguous spans (FilterSpan), later terms re-filter only the
  /// survivors (FilterSelected). Appends passing base RowIds, ascending,
  /// to `out_rows` (null = count only) and returns how many passed.
  ///
  /// The PASS SET is identical to feeding each row through Feed. The
  /// term order, however, is frozen per region segment at the order in
  /// force when the segment starts (per-row Feed re-ranks after every
  /// row), so `evaluations()` may differ between the two paths — the
  /// selection-vector path cannot consult statistics mid-span. Region
  /// pass-rate statistics accrue in bulk with the same totals a frozen
  /// order would produce row by row.
  std::int64_t FeedRange(storage::RowId first, storage::RowId last,
                         std::vector<storage::RowId>* out_rows);

  /// Total individual predicate evaluations so far — the cost an
  /// optimizer tries to minimise.
  std::int64_t evaluations() const { return evaluations_; }
  std::int64_t rows_fed() const { return rows_fed_; }
  std::int64_t rows_passed() const { return rows_passed_; }

  /// The term order currently used for `region` (term indices,
  /// most-selective-first once warmed up).
  std::vector<std::size_t> RegionOrder(std::int64_t region) const;

  std::int64_t RegionOf(storage::RowId row) const;
  std::int64_t num_regions() const { return config_.num_regions; }

 private:
  struct TermStats {
    std::int64_t evaluated = 0;
    std::int64_t passed = 0;

    double pass_rate() const {
      return evaluated == 0 ? 1.0
                            : static_cast<double>(passed) /
                                  static_cast<double>(evaluated);
    }
  };

  std::vector<Term> terms_;
  std::int64_t row_count_;
  AdaptiveConjunctionConfig config_;
  /// stats_[region][term]
  std::vector<std::vector<TermStats>> stats_;
  std::int64_t evaluations_ = 0;
  std::int64_t rows_fed_ = 0;
  std::int64_t rows_passed_ = 0;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_ADAPTIVE_FILTER_H_
