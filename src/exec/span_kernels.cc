#include "exec/span_kernels.h"

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DBTOUCH_X86 1
#else
#define DBTOUCH_X86 0
#endif

namespace dbtouch::exec {
namespace {

SimdLevel DetectSimdLevel() {
#if DBTOUCH_X86
  if (__builtin_cpu_supports("avx2")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

SimdLevel HardwareSimdLevel() {
  static const SimdLevel level = DetectSimdLevel();
  return level;
}

SimdLevel InitialSimdLevel() {
  const char* env = std::getenv("DBTOUCH_SIMD");
  if (env != nullptr && std::strcmp(env, "scalar") == 0) {
    return SimdLevel::kScalar;
  }
  // Any other value (including "avx2") means "best available".
  return HardwareSimdLevel();
}

std::atomic<SimdLevel>& ActiveLevelSlot() {
  static std::atomic<SimdLevel> level{InitialSimdLevel()};
  return level;
}

// ---------------------------------------------------------------------------
// Min/max over native-typed spans. Native-domain accumulation then one
// conversion: conversions int32->double, int64->double, float->double are
// monotone, so the converted native minimum IS the minimum of the
// converted values, bit for bit (see span_kernels.h).

template <typename T>
void MinMaxScalarLoop(const T* p, std::int64_t n, T* min_out, T* max_out) {
  T mn = *min_out;
  T mx = *max_out;
  for (std::int64_t i = 0; i < n; ++i) {
    // NaN-skipping by construction for floating T: NaN < mn is false.
    if (p[i] < mn) {
      mn = p[i];
    }
    if (p[i] > mx) {
      mx = p[i];
    }
  }
  *min_out = mn;
  *max_out = mx;
}

// One-sided horizontal reductions for the vector accumulators. The lane
// folds must NOT reuse MinMaxScalarLoop: a lane that only ever saw NaNs
// keeps its +-infinity seed, and feeding the min lanes through a two-sided
// loop would leak that +infinity seed into max_out (and -infinity into
// min_out from the max lanes).
template <typename T>
void ReduceMinLanes(const T* lanes, std::int64_t n, T* min_out) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (lanes[i] < *min_out) {
      *min_out = lanes[i];
    }
  }
}

template <typename T>
void ReduceMaxLanes(const T* lanes, std::int64_t n, T* max_out) {
  for (std::int64_t i = 0; i < n; ++i) {
    if (lanes[i] > *max_out) {
      *max_out = lanes[i];
    }
  }
}

#if DBTOUCH_X86

// _mm256_min_pd(v, acc) keeps acc when v is NaN (the compare is false),
// matching the scalar `if (v < mn)` NaN skip exactly.
__attribute__((target("avx2"))) void MinMaxAvx2F64(const double* p,
                                                   std::int64_t n,
                                                   double* min_out,
                                                   double* max_out) {
  std::int64_t i = 0;
  if (n >= 8) {
    __m256d mn0 = _mm256_set1_pd(*min_out);
    __m256d mx0 = _mm256_set1_pd(*max_out);
    __m256d mn1 = mn0;
    __m256d mx1 = mx0;
    for (; i + 8 <= n; i += 8) {
      const __m256d v0 = _mm256_loadu_pd(p + i);
      const __m256d v1 = _mm256_loadu_pd(p + i + 4);
      mn0 = _mm256_min_pd(v0, mn0);
      mx0 = _mm256_max_pd(v0, mx0);
      mn1 = _mm256_min_pd(v1, mn1);
      mx1 = _mm256_max_pd(v1, mx1);
    }
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, _mm256_min_pd(mn0, mn1));
    ReduceMinLanes(lanes, 4, min_out);
    _mm256_store_pd(lanes, _mm256_max_pd(mx0, mx1));
    ReduceMaxLanes(lanes, 4, max_out);
  }
  MinMaxScalarLoop(p + i, n - i, min_out, max_out);
}

__attribute__((target("avx2"))) void MinMaxAvx2F32(const float* p,
                                                   std::int64_t n,
                                                   float* min_out,
                                                   float* max_out) {
  std::int64_t i = 0;
  if (n >= 8) {
    __m256 mn = _mm256_set1_ps(*min_out);
    __m256 mx = _mm256_set1_ps(*max_out);
    for (; i + 8 <= n; i += 8) {
      const __m256 v = _mm256_loadu_ps(p + i);
      mn = _mm256_min_ps(v, mn);
      mx = _mm256_max_ps(v, mx);
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, mn);
    ReduceMinLanes(lanes, 8, min_out);
    _mm256_store_ps(lanes, mx);
    ReduceMaxLanes(lanes, 8, max_out);
  }
  MinMaxScalarLoop(p + i, n - i, min_out, max_out);
}

__attribute__((target("avx2"))) void MinMaxAvx2I32(const std::int32_t* p,
                                                   std::int64_t n,
                                                   std::int32_t* min_out,
                                                   std::int32_t* max_out) {
  std::int64_t i = 0;
  if (n >= 8) {
    __m256i mn = _mm256_set1_epi32(*min_out);
    __m256i mx = _mm256_set1_epi32(*max_out);
    for (; i + 8 <= n; i += 8) {
      const __m256i v =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
      mn = _mm256_min_epi32(v, mn);
      mx = _mm256_max_epi32(v, mx);
    }
    alignas(32) std::int32_t lanes[8];
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), mn);
    ReduceMinLanes(lanes, 8, min_out);
    _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), mx);
    ReduceMaxLanes(lanes, 8, max_out);
  }
  MinMaxScalarLoop(p + i, n - i, min_out, max_out);
}

#endif  // DBTOUCH_X86

template <typename T>
void MinMaxDispatch(const T* p, std::int64_t n, T* min_out, T* max_out) {
#if DBTOUCH_X86
  if (ActiveSimdLevel() == SimdLevel::kAvx2) {
    if constexpr (std::is_same_v<T, double>) {
      MinMaxAvx2F64(p, n, min_out, max_out);
      return;
    } else if constexpr (std::is_same_v<T, float>) {
      MinMaxAvx2F32(p, n, min_out, max_out);
      return;
    } else if constexpr (std::is_same_v<T, std::int32_t>) {
      MinMaxAvx2I32(p, n, min_out, max_out);
      return;
    }
    // int64: no AVX2 epi64 min/max — scalar loop below (auto-vectorizable
    // with compare+blend by the compiler where profitable).
  }
#endif
  MinMaxScalarLoop(p, n, min_out, max_out);
}

template <typename T>
bool MinMaxTyped(const storage::ColumnView& view, MinMaxState* acc) {
  const T* p = view.TypedData<T>();
  if (p == nullptr) {
    return false;
  }
  const std::int64_t n = view.row_count();
  if (n > 0) {
    // Sentinel seeds, NOT p[0]: a NaN first value would poison a seeded
    // accumulator (every later `v < NaN` compare is false) where the
    // scalar path skips it. Floating types use the +-infinity sentinels
    // RunningAggregate itself uses; integers use their extreme values
    // (an all-extremes span leaves the sentinel in place, which is then
    // also the correct answer).
    T mn;
    T mx;
    if constexpr (std::is_floating_point_v<T>) {
      mn = std::numeric_limits<T>::infinity();
      mx = -std::numeric_limits<T>::infinity();
    } else {
      mn = std::numeric_limits<T>::max();
      mx = std::numeric_limits<T>::lowest();
    }
    MinMaxDispatch(p, n, &mn, &mx);
    // All-NaN floating spans keep the infinity sentinels, and the
    // double-domain merge below leaves acc untouched — exactly what
    // feeding NaNs through RunningAggregate does.
    const double mnd = static_cast<double>(mn);
    const double mxd = static_cast<double>(mx);
    if (mnd < acc->min) {
      acc->min = mnd;
    }
    if (mxd > acc->max) {
      acc->max = mxd;
    }
  }
  acc->count += n;
  return true;
}

// ---------------------------------------------------------------------------
// Order-dependent aggregation: one tight loop per type, same inlined
// RunningAggregate::Add sequence as the cursor path.

template <typename T>
bool AggregateTyped(const storage::ColumnView& view, RunningAggregate* agg) {
  const T* p = view.TypedData<T>();
  if (p == nullptr) {
    return false;
  }
  const std::int64_t n = view.row_count();
  for (std::int64_t i = 0; i < n; ++i) {
    agg->Add(static_cast<double>(p[i]));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Filtering. Comparison happens in the double domain with the exact
// conversion GetAsDouble performs, so pass/fail matches Predicate::Matches
// bit for bit. The predicate op is hoisted out of the loop.

template <typename T, typename Pass>
void FilterLoop(const T* p, std::int64_t n, storage::RowId first_row,
                Pass pass, std::vector<storage::RowId>* out_rows,
                std::int64_t* rows_passed) {
  std::int64_t hits = 0;
  if (out_rows != nullptr) {
    for (std::int64_t i = 0; i < n; ++i) {
      if (pass(static_cast<double>(p[i]))) {
        out_rows->push_back(first_row + i);
        ++hits;
      }
    }
  } else {
    for (std::int64_t i = 0; i < n; ++i) {
      hits += pass(static_cast<double>(p[i])) ? 1 : 0;
    }
  }
  *rows_passed += hits;
}

template <typename T>
void FilterTyped(const T* p, std::int64_t n, storage::RowId first_row,
                 const Predicate& predicate,
                 std::vector<storage::RowId>* out_rows,
                 std::int64_t* rows_passed) {
  const double lo = predicate.lo();
  const double hi = predicate.hi();
  switch (predicate.op()) {
    case CompareOp::kLt:
      FilterLoop(p, n, first_row, [lo](double v) { return v < lo; },
                 out_rows, rows_passed);
      return;
    case CompareOp::kLe:
      FilterLoop(p, n, first_row, [lo](double v) { return v <= lo; },
                 out_rows, rows_passed);
      return;
    case CompareOp::kEq:
      FilterLoop(p, n, first_row, [lo](double v) { return v == lo; },
                 out_rows, rows_passed);
      return;
    case CompareOp::kNe:
      FilterLoop(p, n, first_row, [lo](double v) { return v != lo; },
                 out_rows, rows_passed);
      return;
    case CompareOp::kGe:
      FilterLoop(p, n, first_row, [lo](double v) { return v >= lo; },
                 out_rows, rows_passed);
      return;
    case CompareOp::kGt:
      FilterLoop(p, n, first_row, [lo](double v) { return v > lo; },
                 out_rows, rows_passed);
      return;
    case CompareOp::kBetween:
      FilterLoop(p, n, first_row,
                 [lo, hi](double v) { return v >= lo && v <= hi; }, out_rows,
                 rows_passed);
      return;
  }
}

#if DBTOUCH_X86

// 4-wide double compares; the comparison predicates mirror the scalar
// operators' NaN behaviour (ordered compares are false on NaN; != is
// unordered-true, matching `NaN != x`).
__attribute__((target("avx2"))) void FilterAvx2F64(
    const double* p, std::int64_t n, storage::RowId first_row,
    const Predicate& predicate, std::vector<storage::RowId>* out_rows,
    std::int64_t* rows_passed) {
  const __m256d lo = _mm256_set1_pd(predicate.lo());
  const __m256d hi = _mm256_set1_pd(predicate.hi());
  const CompareOp op = predicate.op();
  std::int64_t hits = 0;
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(p + i);
    __m256d mask;
    switch (op) {
      case CompareOp::kLt:
        mask = _mm256_cmp_pd(v, lo, _CMP_LT_OQ);
        break;
      case CompareOp::kLe:
        mask = _mm256_cmp_pd(v, lo, _CMP_LE_OQ);
        break;
      case CompareOp::kEq:
        mask = _mm256_cmp_pd(v, lo, _CMP_EQ_OQ);
        break;
      case CompareOp::kNe:
        mask = _mm256_cmp_pd(v, lo, _CMP_NEQ_UQ);
        break;
      case CompareOp::kGe:
        mask = _mm256_cmp_pd(v, lo, _CMP_GE_OQ);
        break;
      case CompareOp::kGt:
        mask = _mm256_cmp_pd(v, lo, _CMP_GT_OQ);
        break;
      case CompareOp::kBetween:
        mask = _mm256_and_pd(_mm256_cmp_pd(v, lo, _CMP_GE_OQ),
                             _mm256_cmp_pd(v, hi, _CMP_LE_OQ));
        break;
      default:
        mask = _mm256_setzero_pd();
        break;
    }
    int bits = _mm256_movemask_pd(mask);
    if (bits == 0) {
      continue;
    }
    if (out_rows != nullptr) {
      while (bits != 0) {
        const int lane = __builtin_ctz(static_cast<unsigned>(bits));
        out_rows->push_back(first_row + i + lane);
        bits &= bits - 1;
        ++hits;
      }
    } else {
      hits += __builtin_popcount(static_cast<unsigned>(bits));
    }
  }
  *rows_passed += hits;
  if (i < n) {
    FilterTyped(p + i, n - i, first_row + i, predicate, out_rows,
                rows_passed);
  }
}

#endif  // DBTOUCH_X86

}  // namespace

std::string_view SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "?";
}

SimdLevel ActiveSimdLevel() {
  return ActiveLevelSlot().load(std::memory_order_relaxed);
}

void SetSimdLevelForTest(SimdLevel level) {
  if (level > HardwareSimdLevel()) {
    level = SimdLevel::kScalar;
  }
  ActiveLevelSlot().store(level, std::memory_order_relaxed);
}

bool MinMaxSpan(const storage::ColumnView& view, MinMaxState* acc) {
  switch (view.type()) {
    case storage::DataType::kInt32:
      return MinMaxTyped<std::int32_t>(view, acc);
    case storage::DataType::kInt64:
      return MinMaxTyped<std::int64_t>(view, acc);
    case storage::DataType::kFloat:
      return MinMaxTyped<float>(view, acc);
    case storage::DataType::kDouble:
      return MinMaxTyped<double>(view, acc);
    case storage::DataType::kString:
      return false;  // Dictionary codes stay on the cursor path.
  }
  return false;
}

bool AggregateSpan(const storage::ColumnView& view, RunningAggregate* agg) {
  switch (view.type()) {
    case storage::DataType::kInt32:
      return AggregateTyped<std::int32_t>(view, agg);
    case storage::DataType::kInt64:
      return AggregateTyped<std::int64_t>(view, agg);
    case storage::DataType::kFloat:
      return AggregateTyped<float>(view, agg);
    case storage::DataType::kDouble:
      return AggregateTyped<double>(view, agg);
    case storage::DataType::kString:
      return false;
  }
  return false;
}

bool FilterSpan(const storage::ColumnView& view, const Predicate& predicate,
                storage::RowId first_row,
                std::vector<storage::RowId>* out_rows,
                std::int64_t* rows_passed) {
  const std::int64_t n = view.row_count();
  switch (view.type()) {
    case storage::DataType::kInt32: {
      const std::int32_t* p = view.TypedData<std::int32_t>();
      if (p == nullptr) {
        return false;
      }
      FilterTyped(p, n, first_row, predicate, out_rows, rows_passed);
      return true;
    }
    case storage::DataType::kInt64: {
      const std::int64_t* p = view.TypedData<std::int64_t>();
      if (p == nullptr) {
        return false;
      }
      FilterTyped(p, n, first_row, predicate, out_rows, rows_passed);
      return true;
    }
    case storage::DataType::kFloat: {
      const float* p = view.TypedData<float>();
      if (p == nullptr) {
        return false;
      }
      FilterTyped(p, n, first_row, predicate, out_rows, rows_passed);
      return true;
    }
    case storage::DataType::kDouble: {
      const double* p = view.TypedData<double>();
      if (p == nullptr) {
        return false;
      }
#if DBTOUCH_X86
      if (ActiveSimdLevel() == SimdLevel::kAvx2) {
        FilterAvx2F64(p, n, first_row, predicate, out_rows, rows_passed);
        return true;
      }
#endif
      FilterTyped(p, n, first_row, predicate, out_rows, rows_passed);
      return true;
    }
    case storage::DataType::kString:
      return false;
  }
  return false;
}

namespace {

template <typename T>
bool FilterSelectedTyped(const storage::ColumnView& view,
                         const Predicate& predicate,
                         const std::vector<storage::RowId>& in_rows,
                         std::vector<storage::RowId>* out_rows) {
  const T* p = view.TypedData<T>();
  if (p == nullptr) {
    return false;
  }
  for (const storage::RowId row : in_rows) {
    if (predicate.Matches(static_cast<double>(p[row]))) {
      out_rows->push_back(row);
    }
  }
  return true;
}

}  // namespace

bool FilterSelected(const storage::ColumnView& view,
                    const Predicate& predicate,
                    const std::vector<storage::RowId>& in_rows,
                    std::vector<storage::RowId>* out_rows) {
  switch (view.type()) {
    case storage::DataType::kInt32:
      return FilterSelectedTyped<std::int32_t>(view, predicate, in_rows,
                                               out_rows);
    case storage::DataType::kInt64:
      return FilterSelectedTyped<std::int64_t>(view, predicate, in_rows,
                                               out_rows);
    case storage::DataType::kFloat:
      return FilterSelectedTyped<float>(view, predicate, in_rows, out_rows);
    case storage::DataType::kDouble:
      return FilterSelectedTyped<double>(view, predicate, in_rows, out_rows);
    case storage::DataType::kString:
      return false;
  }
  return false;
}

}  // namespace dbtouch::exec
