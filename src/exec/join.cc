#include "exec/join.h"

#include "common/macros.h"

namespace dbtouch::exec {

SymmetricHashJoin::SymmetricHashJoin(storage::ColumnView left,
                                     storage::ColumnView right) {
  cursors_[0] = storage::PagedColumnCursor(left);
  cursors_[1] = storage::PagedColumnCursor(right);
}

SymmetricHashJoin::SymmetricHashJoin(
    std::shared_ptr<storage::PagedColumnSource> left,
    std::shared_ptr<storage::PagedColumnSource> right) {
  cursors_[0] = storage::PagedColumnCursor(std::move(left));
  cursors_[1] = storage::PagedColumnCursor(std::move(right));
}

std::int64_t SymmetricHashJoin::KeyAt(JoinSide side, storage::RowId row) {
  storage::PagedColumnCursor& c = cursors_[static_cast<int>(side)];
  switch (c.type()) {
    case storage::DataType::kInt32:
    case storage::DataType::kString:
      return c.GetInt32(row);
    case storage::DataType::kInt64:
      return c.GetInt64(row);
    case storage::DataType::kFloat:
    case storage::DataType::kDouble:
      // Joining on floating keys is ill-defined; dbTouch joins on integer
      // or dictionary-encoded attributes.
      DBTOUCH_CHECK(false);
  }
  return 0;
}

std::vector<JoinMatch> SymmetricHashJoin::Feed(JoinSide side,
                                               storage::RowId row) {
  std::vector<JoinMatch> out;
  const int s = static_cast<int>(side);
  const int other = 1 - s;
  if (!cursors_[s].InRange(row)) {
    return out;
  }
  if (!fed_[s].insert(row).second) {
    return out;  // Revisit: already joined.
  }
  ++fed_count_[s];
  const std::int64_t key = KeyAt(side, row);

  // Probe the other side first, then insert: a row never matches itself
  // twice and existing partners match exactly once.
  const auto it = tables_[other].find(key);
  if (it != tables_[other].end()) {
    out.reserve(it->second.size());
    for (const storage::RowId partner : it->second) {
      JoinMatch m;
      m.key = key;
      if (side == JoinSide::kLeft) {
        m.left_row = row;
        m.right_row = partner;
      } else {
        m.left_row = partner;
        m.right_row = row;
      }
      out.push_back(m);
    }
  }
  tables_[s][key].push_back(row);
  matches_.insert(matches_.end(), out.begin(), out.end());
  return out;
}

std::int64_t SymmetricHashJoin::hash_entries() const {
  return fed_count_[0] + fed_count_[1];
}

}  // namespace dbtouch::exec
