// Non-blocking join (paper Section 2.9 "Joins"): "we cannot use a
// hash-join as we do not know which data we should use to build the hash
// table ... exploiting non blocking options is a necessary path in
// dbTouch."
//
// SymmetricHashJoin keeps a hash table per side; every tuple the user
// touches is inserted into its side's table and immediately probes the
// other side, so matches surface the moment both partners have been
// touched — no build phase, no blocking.

#ifndef DBTOUCH_EXEC_JOIN_H_
#define DBTOUCH_EXEC_JOIN_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::exec {

enum class JoinSide : std::uint8_t { kLeft = 0, kRight = 1 };

struct JoinMatch {
  storage::RowId left_row = 0;
  storage::RowId right_row = 0;
  std::int64_t key = 0;

  friend bool operator==(const JoinMatch&, const JoinMatch&) = default;
};

class SymmetricHashJoin {
 public:
  /// Joins on integer keys (int32/int64/dictionary codes); `left` and
  /// `right` are the key columns (wrapped in zero-copy cursors).
  SymmetricHashJoin(storage::ColumnView left, storage::ColumnView right);

  /// Paged form: key reads pin blocks of the sources — the buffer-pool
  /// read path, and the only one that works once a side's table has been
  /// spilled and its matrix reclaimed. Both forms read through the same
  /// cursors; only where the bytes live differs.
  SymmetricHashJoin(std::shared_ptr<storage::PagedColumnSource> left,
                    std::shared_ptr<storage::PagedColumnSource> right);

  /// Feeds the tuple the user just touched on `side`. Re-fed rows are
  /// no-ops (a slide may revisit data; each pair matches exactly once).
  /// Returns the new matches this tuple produced.
  std::vector<JoinMatch> Feed(JoinSide side, storage::RowId row);

  /// All matches produced so far, in production order.
  const std::vector<JoinMatch>& matches() const { return matches_; }

  std::int64_t left_fed() const { return fed_count_[0]; }
  std::int64_t right_fed() const { return fed_count_[1]; }

  /// Memory-ish cost proxy: entries resident across both hash tables.
  std::int64_t hash_entries() const;

  /// Drops the working pins — gesture-pause hygiene: an idle session
  /// must not hold buffer-pool blocks pinned (free for zero-copy sides).
  void ReleasePins() {
    cursors_[0].ReleasePin();
    cursors_[1].ReleasePin();
  }

 private:
  std::int64_t KeyAt(JoinSide side, storage::RowId row);

  storage::PagedColumnCursor cursors_[2];
  /// key -> rows with that key, per side.
  std::unordered_map<std::int64_t, std::vector<storage::RowId>> tables_[2];
  std::unordered_set<storage::RowId> fed_[2];
  std::int64_t fed_count_[2] = {0, 0};
  std::vector<JoinMatch> matches_;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_JOIN_H_
