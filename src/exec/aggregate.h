// Running aggregates. In dbTouch an aggregation never sees its whole input
// up front: the user feeds it values one touch at a time, in any order,
// possibly revisiting rows ("a slide gesture ... computes a running
// aggregate and continuously updates this result", Section 2.3). The
// accumulator therefore supports out-of-order and repeated feeding, with
// optional row-dedup so revisits don't skew results.

#ifndef DBTOUCH_EXEC_AGGREGATE_H_
#define DBTOUCH_EXEC_AGGREGATE_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::exec {

enum class AggKind : std::uint8_t {
  kCount = 0,
  kSum = 1,
  kAvg = 2,
  kMin = 3,
  kMax = 4,
  kVariance = 5,
  kStdDev = 6,
};

std::string_view AggKindName(AggKind kind);

/// Numerically stable (Welford) streaming accumulator.
class RunningAggregate {
 public:
  explicit RunningAggregate(AggKind kind) : kind_(kind) {}

  // Inline (and kept in one canonical spot): the span kernels replay this
  // exact operation order over whole blocks, and bit-identical results
  // across the scalar and vectorized paths depend on every caller
  // compiling the same sequence of double ops.
  void Add(double v) {
    ++count_;
    sum_ += v;
    const double delta = v - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (v - mean_);
    if (v < min_) {
      min_ = v;
    }
    if (v > max_) {
      max_ = v;
    }
  }

  /// Current aggregate value; NaN when empty (except count, which is 0).
  double value() const;

  std::int64_t count() const { return count_; }
  AggKind kind() const { return kind_; }

  void Reset();

 private:
  AggKind kind_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// A running aggregate fed by touched rows of one column. Deduplicates
/// rows (a back-and-forth slide revisits data; the aggregate must not
/// count it twice), tracking coverage for progress reporting.
class TouchedAggregateOp {
 public:
  /// Reads go through a paged cursor either way: the ColumnView form wraps
  /// an unpaged (zero-copy) source; the source form lets the kernel feed
  /// the op through the shared BufferManager's block cache.
  TouchedAggregateOp(storage::ColumnView column, AggKind kind)
      : cursor_(column), agg_(kind) {}
  TouchedAggregateOp(std::shared_ptr<storage::PagedColumnSource> source,
                     AggKind kind)
      : cursor_(std::move(source)), agg_(kind) {}

  /// Feeds row `row` if within range and unseen. Returns true when the row
  /// contributed (i.e. it was new).
  bool Feed(storage::RowId row);

  /// Feeds every in-range, unseen row of [first, last] in ascending order:
  /// the same contributions per-row Feed would make, but reading whole
  /// pinned block slices instead of re-probing the cursor per row (the
  /// dedup set is still consulted per row — revisits must not count
  /// twice). Returns how many rows contributed.
  std::int64_t FeedRange(storage::RowId first, storage::RowId last);

  double value() const { return agg_.value(); }
  std::int64_t rows_seen() const { return agg_.count(); }

  /// Fraction of the column's rows fed so far, in [0, 1].
  double coverage() const;

  /// Drops the cursor's working pin (gesture ended — an idle op must not
  /// hold buffer-pool blocks pinned). No-op for unpaged sources.
  void ReleasePin() { cursor_.ReleasePin(); }

  void Reset();

 private:
  storage::PagedColumnCursor cursor_;
  RunningAggregate agg_;
  std::unordered_set<storage::RowId> seen_;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_AGGREGATE_H_
