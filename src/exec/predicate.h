// Predicates for filtered slides: "the slide gesture can be used ... to
// perform selections by posing a where restriction to the scan"
// (Section 2.9 "Complex Queries").

#ifndef DBTOUCH_EXEC_PREDICATE_H_
#define DBTOUCH_EXEC_PREDICATE_H_

#include <cstdint>
#include <memory>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/column.h"
#include "storage/paged_column.h"
#include "storage/types.h"

namespace dbtouch::exec {

enum class CompareOp : std::uint8_t {
  kLt = 0,
  kLe = 1,
  kEq = 2,
  kNe = 3,
  kGe = 4,
  kGt = 5,
  kBetween = 6,  // lo <= v <= hi
};

std::string_view CompareOpName(CompareOp op);

/// Compares a column's numeric view against constants. String columns
/// compare on dictionary codes, which supports equality against a code
/// obtained from Dictionary::Find.
class Predicate {
 public:
  Predicate(CompareOp op, double constant)
      : op_(op), lo_(constant), hi_(constant) {}

  /// Between-predicate [lo, hi].
  Predicate(double lo, double hi) : op_(CompareOp::kBetween), lo_(lo),
                                    hi_(hi) {}

  bool Matches(double v) const;

  bool MatchesRow(const storage::ColumnView& column,
                  storage::RowId row) const {
    return column.InRange(row) && Matches(column.GetAsDouble(row));
  }

  CompareOp op() const { return op_; }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Closed interval [lo, hi] (with +-infinity) containing every value the
  /// predicate can accept. Zone maps prune blocks disjoint from it. For
  /// kNe the interval is the full line (no pruning possible).
  struct Interval {
    double lo;
    double hi;
  };
  Interval ValueInterval() const;

  /// Selectivity-free pretty form for logs, e.g. "< 10".
  std::string ToString() const;

 private:
  CompareOp op_;
  double lo_;
  double hi_;
};

/// Filtered per-touch scan: each fed row either passes (value surfaced) or
/// not. Tracks pass/total counts so sessions can report observed
/// selectivity.
class FilteredScanOp {
 public:
  /// ColumnView form = unpaged zero-copy reads; source form = reads pinned
  /// through the shared BufferManager (see TouchedAggregateOp).
  FilteredScanOp(storage::ColumnView column, Predicate predicate)
      : cursor_(column), predicate_(predicate) {}
  FilteredScanOp(std::shared_ptr<storage::PagedColumnSource> source,
                 Predicate predicate)
      : cursor_(std::move(source)), predicate_(predicate) {}

  /// True when the row is in range and satisfies the predicate.
  bool Feed(storage::RowId row);

  /// Block-at-a-time filtered scan of base rows [first, last] (clamped to
  /// the column): appends every passing base RowId, ascending, to the
  /// selection vector `out_rows` (null = count only) and returns the
  /// number appended. Decision-for-decision identical to feeding each row
  /// through Feed; pass/fed counts accrue the same way. Contiguous
  /// numeric blocks run the vectorized FilterSpan kernel; string/strided
  /// blocks fall back to per-row evaluation.
  std::int64_t FeedRange(storage::RowId first, storage::RowId last,
                         std::vector<storage::RowId>* out_rows);

  std::int64_t rows_fed() const { return rows_fed_; }
  std::int64_t rows_passed() const { return rows_passed_; }
  double observed_selectivity() const {
    return rows_fed_ == 0 ? 0.0
                          : static_cast<double>(rows_passed_) /
                                static_cast<double>(rows_fed_);
  }

  /// Drops the cursor's working pin (see TouchedAggregateOp::ReleasePin).
  void ReleasePin() { cursor_.ReleasePin(); }

 private:
  storage::PagedColumnCursor cursor_;
  Predicate predicate_;
  std::int64_t rows_fed_ = 0;
  std::int64_t rows_passed_ = 0;
};

}  // namespace dbtouch::exec

#endif  // DBTOUCH_EXEC_PREDICATE_H_
