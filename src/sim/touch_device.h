// The simulated touch screen. Substitutes for the paper's iPad 1: it owns
// the physical parameters that bound how much data a gesture can reach
// (paper Section 2.5 "Touching Samples" — "limitations ... purely due to
// physical constraints (e.g., finger and object size)").

#ifndef DBTOUCH_SIM_TOUCH_DEVICE_H_
#define DBTOUCH_SIM_TOUCH_DEVICE_H_

#include <cstdint>

#include "sim/touch_event.h"
#include "sim/virtual_clock.h"

namespace dbtouch::sim {

/// Physical description of the device.
///
/// Defaults model the iPad 1 used in the paper: 1024x768 at 132 ppi gives a
/// 19.7 x 14.8 cm display at ~52 points/cm. `touch_event_hz` is the rate at
/// which distinct touch-move positions are registered by the OS and
/// delivered to dbTouch; 15 Hz is calibrated from Figure 4(a), where a 4 s
/// slide yields ~60 processed entries (see DESIGN.md, calibration note).
struct TouchDeviceConfig {
  double screen_width_cm = 19.7;
  double screen_height_cm = 14.8;
  double points_per_cm = 52.0;
  double touch_event_hz = 15.0;
  /// Finger contact patch diameter. Movements smaller than half of this are
  /// absorbed (touch slop) and do not produce distinct move events.
  double finger_width_cm = 0.8;
};

/// Validates and exposes device geometry, quantisation and sampling.
class TouchDevice {
 public:
  explicit TouchDevice(const TouchDeviceConfig& config = TouchDeviceConfig());

  const TouchDeviceConfig& config() const { return config_; }

  /// Interval between registered touch-move events.
  Micros event_interval_us() const;

  /// Clamps a point to the screen and snaps it to the device point grid.
  /// A capacitive screen cannot report between-pixel positions; snapping is
  /// what makes the number of distinct reachable positions finite (the
  /// physical constraint behind paper Section 2.5).
  PointCm Quantize(const PointCm& p) const;

  /// Number of distinct touch positions along a vertical span of
  /// `length_cm`: the hard upper bound on tuples reachable from an object
  /// of that height without zooming.
  std::int64_t DistinctPositions(double length_cm) const;

  /// Minimum movement (cm) that registers as a new touch position.
  double touch_slop_cm() const { return config_.finger_width_cm / 2.0; }

 private:
  TouchDeviceConfig config_;
};

}  // namespace dbtouch::sim

#endif  // DBTOUCH_SIM_TOUCH_DEVICE_H_
