// MotionProfile: how far along its path a finger is at each instant.
//
// The paper stresses that slide gestures have no restrictions: "users may
// change the slide speed over time, they may change the direction of the
// slide or they may even pause" (Section 2.6). A MotionProfile captures all
// of that as a piecewise-linear function from time to path fraction, where
// fraction 0 is the gesture's start point and 1 its end point. Fractions
// may decrease (direction reversal) and hold (pause).

#ifndef DBTOUCH_SIM_MOTION_PROFILE_H_
#define DBTOUCH_SIM_MOTION_PROFILE_H_

#include <vector>

namespace dbtouch::sim {

class MotionProfile {
 public:
  /// Starts a profile at path fraction `start_fraction` (default 0).
  explicit MotionProfile(double start_fraction = 0.0);

  /// A steady end-to-end slide: fraction 0 -> 1 over `duration_s` seconds.
  static MotionProfile Constant(double duration_s);

  /// Holds the current position for `duration_s` seconds (a pause).
  MotionProfile& ThenPause(double duration_s);

  /// Moves linearly from the current fraction to `fraction` over
  /// `duration_s` seconds. `fraction` may be smaller than the current one,
  /// which models reversing direction over already-seen data.
  MotionProfile& ThenMoveTo(double fraction, double duration_s);

  double total_duration_s() const { return total_duration_s_; }

  /// Path fraction at time `t_s` (clamped to [0, total duration]).
  double FractionAt(double t_s) const;

  /// Signed speed in fractions/second at time `t_s` (0 during pauses).
  double SpeedAt(double t_s) const;

 private:
  struct Segment {
    double start_s;
    double duration_s;
    double from_fraction;
    double to_fraction;
  };

  std::vector<Segment> segments_;
  double start_fraction_;
  double total_duration_s_ = 0.0;
};

}  // namespace dbtouch::sim

#endif  // DBTOUCH_SIM_MOTION_PROFILE_H_
