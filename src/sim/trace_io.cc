#include "sim/trace_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/string_util.h"

namespace dbtouch::sim {

std::string SerializeTrace(const GestureTrace& trace) {
  std::ostringstream out;
  out << "# dbtouch-trace v1\n";
  out << "name " << trace.name << "\n";
  for (const TouchEvent& e : trace.events) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "e %lld %d %d %.6f %.6f\n",
                  static_cast<long long>(e.timestamp_us), e.finger_id,
                  static_cast<int>(e.phase), e.position.x, e.position.y);
    out << buf;
  }
  return out.str();
}

Result<GestureTrace> ParseTrace(const std::string& text) {
  GestureTrace trace;
  std::istringstream in(text);
  std::string line;
  bool saw_header = false;
  Micros last_ts = -1;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripWhitespace(line);
    if (stripped.empty()) {
      continue;
    }
    if (!saw_header) {
      if (stripped != "# dbtouch-trace v1") {
        return Status::InvalidArgument("bad trace header: " + line);
      }
      saw_header = true;
      continue;
    }
    if (StartsWith(stripped, "name ")) {
      trace.name = std::string(stripped.substr(5));
      continue;
    }
    if (StartsWith(stripped, "e ")) {
      long long ts = 0;
      int finger = 0;
      int phase = 0;
      double x = 0.0;
      double y = 0.0;
      const int n = std::sscanf(std::string(stripped).c_str(),
                                "e %lld %d %d %lf %lf", &ts, &finger, &phase,
                                &x, &y);
      if (n != 5) {
        return Status::InvalidArgument("bad event at line " +
                                       std::to_string(line_no));
      }
      if (phase < 0 || phase > 3) {
        return Status::InvalidArgument("bad phase at line " +
                                       std::to_string(line_no));
      }
      if (ts < last_ts) {
        return Status::InvalidArgument("non-monotonic timestamp at line " +
                                       std::to_string(line_no));
      }
      last_ts = ts;
      trace.events.push_back(TouchEvent{ts, finger,
                                        static_cast<TouchPhase>(phase),
                                        PointCm{x, y}});
      continue;
    }
    return Status::InvalidArgument("unrecognised line " +
                                   std::to_string(line_no) + ": " + line);
  }
  if (!saw_header) {
    return Status::InvalidArgument("empty trace file");
  }
  return trace;
}

Status SaveTrace(const GestureTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return Status::NotFound("cannot open for write: " + path);
  }
  out << SerializeTrace(trace);
  if (!out.good()) {
    return Status::Internal("write failed: " + path);
  }
  return Status::OK();
}

Result<GestureTrace> LoadTrace(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseTrace(buf.str());
}

}  // namespace dbtouch::sim
