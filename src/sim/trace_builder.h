// TraceBuilder: synthesises deterministic touch-event streams for the
// gestures of paper Figure 1 (slide, tap, pinch zoom-in/out, two-finger
// rotate), sampled at the device's registered-touch rate.

#ifndef DBTOUCH_SIM_TRACE_BUILDER_H_
#define DBTOUCH_SIM_TRACE_BUILDER_H_

#include <string>

#include "sim/motion_profile.h"
#include "sim/touch_device.h"
#include "sim/touch_event.h"

namespace dbtouch::sim {

class TraceBuilder {
 public:
  explicit TraceBuilder(const TouchDevice& device) : device_(device) {}

  /// One-finger slide along the straight line `from` -> `to`, progressing
  /// according to `profile`. Consecutive samples that quantise to the same
  /// device position are collapsed (a stationary finger registers no moves,
  /// which is what makes pauses free and slow slides bounded by the number
  /// of distinct positions — paper Section 2.5).
  GestureTrace Slide(std::string name, PointCm from, PointCm to,
                     const MotionProfile& profile,
                     Micros start_time_us = 0) const;

  /// Single tap: touch down and up at one position, `hold_s` apart.
  GestureTrace Tap(std::string name, PointCm at, double hold_s = 0.05,
                   Micros start_time_us = 0) const;

  /// Two-finger pinch along the axis at `axis_angle_rad`, symmetric around
  /// `center`; finger separation animates start -> end over `duration_s`.
  /// end > start is a zoom-in, end < start a zoom-out.
  GestureTrace Pinch(std::string name, PointCm center, double axis_angle_rad,
                     double start_separation_cm, double end_separation_cm,
                     double duration_s, Micros start_time_us = 0) const;

  /// Two fingers on opposite ends of a circle of `radius_cm` around
  /// `center`, rotating from `start_angle_rad` to `end_angle_rad`.
  GestureTrace TwoFingerRotate(std::string name, PointCm center,
                               double radius_cm, double start_angle_rad,
                               double end_angle_rad, double duration_s,
                               Micros start_time_us = 0) const;

 private:
  const TouchDevice& device_;
};

}  // namespace dbtouch::sim

#endif  // DBTOUCH_SIM_TRACE_BUILDER_H_
