// Virtual time. All dbTouch components take timestamps from a VirtualClock
// so traces, benchmarks and the simulated network are deterministic and
// independent of wall-clock noise.

#ifndef DBTOUCH_SIM_VIRTUAL_CLOCK_H_
#define DBTOUCH_SIM_VIRTUAL_CLOCK_H_

#include <cstdint>

namespace dbtouch::sim {

/// Microseconds since simulation start. Signed so durations subtract safely.
using Micros = std::int64_t;

inline constexpr Micros kMicrosPerMilli = 1'000;
inline constexpr Micros kMicrosPerSecond = 1'000'000;

constexpr Micros SecondsToMicros(double seconds) {
  return static_cast<Micros>(seconds * static_cast<double>(kMicrosPerSecond));
}

constexpr double MicrosToSeconds(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerSecond);
}

constexpr double MicrosToMillis(Micros us) {
  return static_cast<double>(us) / static_cast<double>(kMicrosPerMilli);
}

/// A monotonically advancing simulated clock.
///
/// Trace replay drives the clock forward to each event's timestamp; modules
/// that model costs (the simulated network, the prefetcher) schedule
/// completions at future instants and compare against now().
class VirtualClock {
 public:
  VirtualClock() = default;

  Micros now() const { return now_us_; }

  /// Moves time forward to `t`. Ignores moves into the past (replaying a
  /// trace event that carries an older timestamp is a no-op advance), so
  /// time never runs backwards.
  void AdvanceTo(Micros t) {
    if (t > now_us_) {
      now_us_ = t;
    }
  }

  /// Moves time forward by `dt` (must be >= 0).
  void Advance(Micros dt) {
    if (dt > 0) {
      now_us_ += dt;
    }
  }

  /// Resets to t=0 (new simulation run).
  void Reset() { now_us_ = 0; }

 private:
  Micros now_us_ = 0;
};

}  // namespace dbtouch::sim

#endif  // DBTOUCH_SIM_VIRTUAL_CLOCK_H_
