#include "sim/touch_event.h"

#include <cmath>

namespace dbtouch::sim {

const char* TouchPhaseName(TouchPhase phase) {
  switch (phase) {
    case TouchPhase::kBegan:
      return "began";
    case TouchPhase::kMoved:
      return "moved";
    case TouchPhase::kEnded:
      return "ended";
    case TouchPhase::kCancelled:
      return "cancelled";
  }
  return "?";
}

double DistanceCm(const PointCm& a, const PointCm& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

void GestureTrace::Append(const GestureTrace& other, Micros gap_us) {
  const Micros base = duration_us() + gap_us;
  events.reserve(events.size() + other.events.size());
  for (TouchEvent e : other.events) {
    e.timestamp_us += base;
    events.push_back(e);
  }
}

}  // namespace dbtouch::sim
