#include "sim/touch_device.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace dbtouch::sim {

TouchDevice::TouchDevice(const TouchDeviceConfig& config) : config_(config) {
  DBTOUCH_CHECK(config_.screen_width_cm > 0.0);
  DBTOUCH_CHECK(config_.screen_height_cm > 0.0);
  DBTOUCH_CHECK(config_.points_per_cm > 0.0);
  DBTOUCH_CHECK(config_.touch_event_hz > 0.0);
  DBTOUCH_CHECK(config_.finger_width_cm >= 0.0);
}

Micros TouchDevice::event_interval_us() const {
  return static_cast<Micros>(static_cast<double>(kMicrosPerSecond) /
                             config_.touch_event_hz);
}

PointCm TouchDevice::Quantize(const PointCm& p) const {
  PointCm q;
  q.x = std::clamp(p.x, 0.0, config_.screen_width_cm);
  q.y = std::clamp(p.y, 0.0, config_.screen_height_cm);
  const double ppc = config_.points_per_cm;
  q.x = std::round(q.x * ppc) / ppc;
  q.y = std::round(q.y * ppc) / ppc;
  return q;
}

std::int64_t TouchDevice::DistinctPositions(double length_cm) const {
  if (length_cm <= 0.0) {
    return 0;
  }
  return static_cast<std::int64_t>(
             std::floor(length_cm * config_.points_per_cm)) +
         1;
}

}  // namespace dbtouch::sim
