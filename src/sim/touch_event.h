// Touch events: the contract between the simulated operating system layer
// and dbTouch (paper Figure 3, "Recognize Touch"). The kernel never sees
// anything lower-level than these.

#ifndef DBTOUCH_SIM_TOUCH_EVENT_H_
#define DBTOUCH_SIM_TOUCH_EVENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/virtual_clock.h"

namespace dbtouch::sim {

/// Lifecycle phase of one finger contact, mirroring UITouchPhase.
enum class TouchPhase : std::uint8_t {
  kBegan = 0,
  kMoved = 1,
  kEnded = 2,
  kCancelled = 3,
};

const char* TouchPhaseName(TouchPhase phase);

/// A point on the screen in centimetres from the top-left corner
/// (x grows right, y grows down — matching view coordinates).
struct PointCm {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const PointCm&, const PointCm&) = default;
};

/// Euclidean distance between two points, in cm.
double DistanceCm(const PointCm& a, const PointCm& b);

/// One registered touch sample for one finger.
struct TouchEvent {
  Micros timestamp_us = 0;
  /// Stable finger identifier for the duration of the contact (0 for the
  /// first finger, 1 for the second in pinch/rotate gestures).
  std::int32_t finger_id = 0;
  TouchPhase phase = TouchPhase::kBegan;
  PointCm position;

  friend bool operator==(const TouchEvent&, const TouchEvent&) = default;
};

/// A recorded gesture: a named, time-ordered stream of touch events.
/// Traces are the unit of replay: benchmarks and tests build traces once
/// and feed them through the kernel.
struct GestureTrace {
  std::string name;
  std::vector<TouchEvent> events;

  bool empty() const { return events.empty(); }

  /// Timestamp of the last event, or 0 for an empty trace.
  Micros duration_us() const {
    return events.empty() ? 0 : events.back().timestamp_us;
  }

  /// Appends another trace's events, shifting them to start `gap_us` after
  /// this trace ends. Used to compose exploration sessions.
  void Append(const GestureTrace& other, Micros gap_us);
};

}  // namespace dbtouch::sim

#endif  // DBTOUCH_SIM_TOUCH_EVENT_H_
