// Trace serialisation: a line-oriented text format so recorded exploration
// sessions can be saved, diffed and replayed.
//
//   # dbtouch-trace v1
//   name <gesture name>
//   e <timestamp_us> <finger_id> <phase 0..3> <x_cm> <y_cm>

#ifndef DBTOUCH_SIM_TRACE_IO_H_
#define DBTOUCH_SIM_TRACE_IO_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "sim/touch_event.h"

namespace dbtouch::sim {

/// Serialises a trace to the text format above.
std::string SerializeTrace(const GestureTrace& trace);

/// Parses a serialised trace. Rejects malformed headers, unknown phases and
/// non-monotonic timestamps.
Result<GestureTrace> ParseTrace(const std::string& text);

/// File round-trip helpers.
Status SaveTrace(const GestureTrace& trace, const std::string& path);
Result<GestureTrace> LoadTrace(const std::string& path);

}  // namespace dbtouch::sim

#endif  // DBTOUCH_SIM_TRACE_IO_H_
