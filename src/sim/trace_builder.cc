#include "sim/trace_builder.h"

#include <cmath>
#include <utility>

#include "common/macros.h"

namespace dbtouch::sim {
namespace {

PointCm Lerp(const PointCm& a, const PointCm& b, double f) {
  return PointCm{a.x + (b.x - a.x) * f, a.y + (b.y - a.y) * f};
}

}  // namespace

GestureTrace TraceBuilder::Slide(std::string name, PointCm from, PointCm to,
                                 const MotionProfile& profile,
                                 Micros start_time_us) const {
  GestureTrace trace;
  trace.name = std::move(name);
  const Micros step = device_.event_interval_us();
  const Micros total =
      SecondsToMicros(profile.total_duration_s());

  const PointCm first = device_.Quantize(Lerp(from, to, profile.FractionAt(0)));
  trace.events.push_back(
      TouchEvent{start_time_us, 0, TouchPhase::kBegan, first});
  PointCm last = first;

  for (Micros t = step; t < total; t += step) {
    const double f = profile.FractionAt(MicrosToSeconds(t));
    const PointCm p = device_.Quantize(Lerp(from, to, f));
    if (p == last) {
      continue;  // Stationary: the OS registers no move.
    }
    trace.events.push_back(
        TouchEvent{start_time_us + t, 0, TouchPhase::kMoved, p});
    last = p;
  }

  const PointCm end =
      device_.Quantize(Lerp(from, to, profile.FractionAt(
                                          profile.total_duration_s())));
  trace.events.push_back(
      TouchEvent{start_time_us + total, 0, TouchPhase::kEnded, end});
  return trace;
}

GestureTrace TraceBuilder::Tap(std::string name, PointCm at, double hold_s,
                               Micros start_time_us) const {
  GestureTrace trace;
  trace.name = std::move(name);
  const PointCm p = device_.Quantize(at);
  trace.events.push_back(TouchEvent{start_time_us, 0, TouchPhase::kBegan, p});
  trace.events.push_back(TouchEvent{
      start_time_us + SecondsToMicros(hold_s), 0, TouchPhase::kEnded, p});
  return trace;
}

GestureTrace TraceBuilder::Pinch(std::string name, PointCm center,
                                 double axis_angle_rad,
                                 double start_separation_cm,
                                 double end_separation_cm, double duration_s,
                                 Micros start_time_us) const {
  DBTOUCH_CHECK(duration_s > 0.0);
  DBTOUCH_CHECK(start_separation_cm >= 0.0 && end_separation_cm >= 0.0);
  GestureTrace trace;
  trace.name = std::move(name);
  const double ux = std::cos(axis_angle_rad);
  const double uy = std::sin(axis_angle_rad);
  const Micros step = device_.event_interval_us();
  const Micros total = SecondsToMicros(duration_s);

  auto finger_pos = [&](double separation, int finger) {
    const double sign = finger == 0 ? -0.5 : 0.5;
    return device_.Quantize(PointCm{center.x + sign * separation * ux,
                                    center.y + sign * separation * uy});
  };

  trace.events.push_back(TouchEvent{start_time_us, 0, TouchPhase::kBegan,
                                    finger_pos(start_separation_cm, 0)});
  trace.events.push_back(TouchEvent{start_time_us, 1, TouchPhase::kBegan,
                                    finger_pos(start_separation_cm, 1)});

  for (Micros t = step; t < total; t += step) {
    const double f = static_cast<double>(t) / static_cast<double>(total);
    const double sep =
        start_separation_cm + (end_separation_cm - start_separation_cm) * f;
    trace.events.push_back(TouchEvent{start_time_us + t, 0,
                                      TouchPhase::kMoved, finger_pos(sep, 0)});
    trace.events.push_back(TouchEvent{start_time_us + t, 1,
                                      TouchPhase::kMoved, finger_pos(sep, 1)});
  }

  trace.events.push_back(TouchEvent{start_time_us + total, 0,
                                    TouchPhase::kEnded,
                                    finger_pos(end_separation_cm, 0)});
  trace.events.push_back(TouchEvent{start_time_us + total, 1,
                                    TouchPhase::kEnded,
                                    finger_pos(end_separation_cm, 1)});
  return trace;
}

GestureTrace TraceBuilder::TwoFingerRotate(std::string name, PointCm center,
                                           double radius_cm,
                                           double start_angle_rad,
                                           double end_angle_rad,
                                           double duration_s,
                                           Micros start_time_us) const {
  DBTOUCH_CHECK(duration_s > 0.0);
  DBTOUCH_CHECK(radius_cm > 0.0);
  GestureTrace trace;
  trace.name = std::move(name);
  const Micros step = device_.event_interval_us();
  const Micros total = SecondsToMicros(duration_s);

  auto finger_pos = [&](double angle, int finger) {
    const double a = finger == 0 ? angle : angle + M_PI;
    return device_.Quantize(PointCm{center.x + radius_cm * std::cos(a),
                                    center.y + radius_cm * std::sin(a)});
  };

  trace.events.push_back(TouchEvent{start_time_us, 0, TouchPhase::kBegan,
                                    finger_pos(start_angle_rad, 0)});
  trace.events.push_back(TouchEvent{start_time_us, 1, TouchPhase::kBegan,
                                    finger_pos(start_angle_rad, 1)});

  for (Micros t = step; t < total; t += step) {
    const double f = static_cast<double>(t) / static_cast<double>(total);
    const double angle =
        start_angle_rad + (end_angle_rad - start_angle_rad) * f;
    trace.events.push_back(TouchEvent{start_time_us + t, 0, TouchPhase::kMoved,
                                      finger_pos(angle, 0)});
    trace.events.push_back(TouchEvent{start_time_us + t, 1, TouchPhase::kMoved,
                                      finger_pos(angle, 1)});
  }

  trace.events.push_back(TouchEvent{start_time_us + total, 0,
                                    TouchPhase::kEnded,
                                    finger_pos(end_angle_rad, 0)});
  trace.events.push_back(TouchEvent{start_time_us + total, 1,
                                    TouchPhase::kEnded,
                                    finger_pos(end_angle_rad, 1)});
  return trace;
}

}  // namespace dbtouch::sim
