#include "sim/motion_profile.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::sim {

MotionProfile::MotionProfile(double start_fraction)
    : start_fraction_(start_fraction) {}

MotionProfile MotionProfile::Constant(double duration_s) {
  MotionProfile p;
  p.ThenMoveTo(1.0, duration_s);
  return p;
}

MotionProfile& MotionProfile::ThenPause(double duration_s) {
  const double here = segments_.empty() ? start_fraction_
                                        : segments_.back().to_fraction;
  return ThenMoveTo(here, duration_s);
}

MotionProfile& MotionProfile::ThenMoveTo(double fraction, double duration_s) {
  DBTOUCH_CHECK(duration_s > 0.0);
  const double from = segments_.empty() ? start_fraction_
                                        : segments_.back().to_fraction;
  segments_.push_back(Segment{total_duration_s_, duration_s, from, fraction});
  total_duration_s_ += duration_s;
  return *this;
}

double MotionProfile::FractionAt(double t_s) const {
  if (segments_.empty()) {
    return start_fraction_;
  }
  t_s = std::clamp(t_s, 0.0, total_duration_s_);
  for (const Segment& seg : segments_) {
    if (t_s <= seg.start_s + seg.duration_s) {
      const double local = (t_s - seg.start_s) / seg.duration_s;
      return seg.from_fraction +
             (seg.to_fraction - seg.from_fraction) * local;
    }
  }
  return segments_.back().to_fraction;
}

double MotionProfile::SpeedAt(double t_s) const {
  if (segments_.empty() || t_s < 0.0 || t_s > total_duration_s_) {
    return 0.0;
  }
  for (const Segment& seg : segments_) {
    if (t_s <= seg.start_s + seg.duration_s) {
      return (seg.to_fraction - seg.from_fraction) / seg.duration_s;
    }
  }
  return 0.0;
}

}  // namespace dbtouch::sim
