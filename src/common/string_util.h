// Small string helpers used across modules (formatting of report tables,
// byte counts, joining).

#ifndef DBTOUCH_COMMON_STRING_UTIL_H_
#define DBTOUCH_COMMON_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dbtouch {

/// Joins `parts` with `sep`: Join({"a","b"}, ", ") -> "a, b".
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// "1.5 KiB", "3.2 MiB", ... (binary units).
std::string HumanBytes(std::uint64_t bytes);

/// Fixed-point decimal: FormatDouble(1.23456, 2) -> "1.23".
std::string FormatDouble(double v, int decimals);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

}  // namespace dbtouch

#endif  // DBTOUCH_COMMON_STRING_UTIL_H_
