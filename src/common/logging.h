// Minimal leveled logging for dbTouch.
//
// Logging goes to stderr and is off below the global threshold; benchmarks
// set the threshold to kWarning so hot paths stay quiet. Emission is
// thread-safe: each message is formatted privately and the sink write is
// serialised, so server workers can log concurrently without interleaving.

#ifndef DBTOUCH_COMMON_LOGGING_H_
#define DBTOUCH_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace dbtouch {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// Sets the global minimum level that is emitted. Thread-compatible: set it
/// once at start-up.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits on destruction. Use via DBTOUCH_LOG.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) {
      stream_ << value;
    }
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace dbtouch

/// DBTOUCH_LOG(kInfo) << "loaded " << n << " tuples";
#define DBTOUCH_LOG(level)                                        \
  ::dbtouch::internal::LogMessage(::dbtouch::LogLevel::level,     \
                                  __FILE__, __LINE__)

#endif  // DBTOUCH_COMMON_LOGGING_H_
