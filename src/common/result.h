// Result<T>: value-or-Status, dbTouch's equivalent of absl::StatusOr<T>.

#ifndef DBTOUCH_COMMON_RESULT_H_
#define DBTOUCH_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace dbtouch {

/// Holds either a T or a non-OK Status explaining why the T is absent.
///
/// Accessing value() on an error Result is a programming error and asserts
/// in debug builds; callers must check ok() or use the
/// DBTOUCH_ASSIGN_OR_RETURN macro (macros.h).
template <typename T>
class Result {
 public:
  /// Implicit from value (success case).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status. `status` must not be OK.
  Result(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }

  /// OK if a value is present, else the stored error.
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : fallback; }

 private:
  Status status_;  // OK iff value_ present.
  std::optional<T> value_;
};

}  // namespace dbtouch

#endif  // DBTOUCH_COMMON_RESULT_H_
