// Deterministic random number generation for data generators, traces and
// the simulated network. All randomness in dbTouch flows through Rng so
// experiments are reproducible from a single seed.

#ifndef DBTOUCH_COMMON_RNG_H_
#define DBTOUCH_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace dbtouch {

/// xoshiro256** seeded via splitmix64. Not cryptographic; fast and
/// statistically solid for synthetic workloads.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Uniform over the full 64-bit range.
  std::uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t NextInt64(std::int64_t lo, std::int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// Uniform in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal via Marsaglia polar; deterministic per stream.
  double NextGaussian();

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Forks an independent stream; the child is a pure function of the
  /// parent state, so forking is itself deterministic.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

/// Zipf(s) sampler over ranks [0, n). Precomputes the CDF once (O(n)) and
/// samples in O(log n); suitable for n up to ~10^7.
class ZipfDistribution {
 public:
  /// `skew` = 0 degenerates to uniform; typical skews are 0.5–1.5.
  ZipfDistribution(std::uint64_t n, double skew);

  std::uint64_t Sample(Rng& rng) const;

  std::uint64_t n() const { return n_; }
  double skew() const { return skew_; }

 private:
  std::uint64_t n_;
  double skew_;
  std::vector<double> cdf_;
};

}  // namespace dbtouch

#endif  // DBTOUCH_COMMON_RNG_H_
