#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace dbtouch {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(sm);
  }
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  DBTOUCH_CHECK(bound > 0);
  // Debiased modulo (Lemire-style rejection kept simple).
  const std::uint64_t threshold = (-bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

std::int64_t Rng::NextInt64(std::int64_t lo, std::int64_t hi) {
  DBTOUCH_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextUint64());
  }
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  have_cached_gaussian_ = true;
  return u * factor;
}

bool Rng::NextBernoulli(double p) {
  p = std::clamp(p, 0.0, 1.0);
  return NextDouble() < p;
}

Rng Rng::Fork() {
  return Rng(NextUint64());
}

ZipfDistribution::ZipfDistribution(std::uint64_t n, double skew)
    : n_(n), skew_(skew) {
  DBTOUCH_CHECK(n > 0);
  cdf_.resize(n);
  double acc = 0.0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) {
    c /= total;
  }
}

std::uint64_t ZipfDistribution::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

}  // namespace dbtouch
