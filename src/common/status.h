// Status: lightweight error propagation for dbTouch.
//
// dbTouch is exception-free (Google C++ style). Every fallible operation
// returns a Status, or a Result<T> (see result.h) when it also produces a
// value. Helper macros for propagation live in macros.h.

#ifndef DBTOUCH_COMMON_STATUS_H_
#define DBTOUCH_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace dbtouch {

/// Canonical error space, modelled after absl::StatusCode. Keep the numeric
/// values stable: traces and the remote protocol serialise them.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
  kAborted = 9,
  kInternal = 10,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to construct in the OK case (no
/// allocation); error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code_ == StatusCode::kAlreadyExists;
  }
  bool IsFailedPrecondition() const {
    return code_ == StatusCode::kFailedPrecondition;
  }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dbtouch

#endif  // DBTOUCH_COMMON_STATUS_H_
