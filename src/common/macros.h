// Propagation and checking macros shared across dbTouch.

#ifndef DBTOUCH_COMMON_MACROS_H_
#define DBTOUCH_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define DBTOUCH_RETURN_IF_ERROR(expr)                 \
  do {                                                \
    ::dbtouch::Status dbtouch_status_tmp_ = (expr);   \
    if (!dbtouch_status_tmp_.ok()) {                  \
      return dbtouch_status_tmp_;                     \
    }                                                 \
  } while (false)

#define DBTOUCH_MACRO_CONCAT_INNER(a, b) a##b
#define DBTOUCH_MACRO_CONCAT(a, b) DBTOUCH_MACRO_CONCAT_INNER(a, b)

/// Evaluates `rexpr` (a Result<T> expression); on success assigns the value
/// to `lhs`, otherwise returns the error Status from the enclosing function.
///
///   DBTOUCH_ASSIGN_OR_RETURN(auto column, table.GetColumn("price"));
#define DBTOUCH_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  DBTOUCH_ASSIGN_OR_RETURN_IMPL(                                          \
      DBTOUCH_MACRO_CONCAT(dbtouch_result_tmp_, __LINE__), lhs, rexpr)

#define DBTOUCH_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                  \
  if (!tmp.ok()) {                                     \
    return tmp.status();                               \
  }                                                    \
  lhs = std::move(tmp).value()

/// Fatal invariant check, active in all build types. dbTouch uses this for
/// programmer errors (broken invariants), never for data-dependent errors,
/// which flow through Status.
#define DBTOUCH_CHECK(cond)                                              \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "DBTOUCH_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                           \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define DBTOUCH_CHECK_OK(expr)                                             \
  do {                                                                     \
    ::dbtouch::Status dbtouch_check_status_ = (expr);                      \
    if (!dbtouch_check_status_.ok()) {                                     \
      std::fprintf(stderr, "DBTOUCH_CHECK_OK failed at %s:%d: %s\n",       \
                   __FILE__, __LINE__,                                     \
                   dbtouch_check_status_.ToString().c_str());              \
      std::abort();                                                        \
    }                                                                      \
  } while (false)

#endif  // DBTOUCH_COMMON_MACROS_H_
