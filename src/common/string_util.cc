#include "common/string_util.h"

#include <cstdio>

namespace dbtouch {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out.append(sep);
    }
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string HumanBytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B",   "KiB", "MiB",
                                           "GiB", "TiB", "PiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 5) {
    value /= 1024.0;
    ++unit;
  }
  char buf[32];
  if (unit == 0) {
    std::snprintf(buf, sizeof(buf), "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f %s", value, kUnits[unit]);
  }
  return buf;
}

std::string FormatDouble(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string_view StripWhitespace(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\n' ||
                   s[b] == '\r')) {
    ++b;
  }
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\n' ||
                   s[e - 1] == '\r')) {
    --e;
  }
  return s.substr(b, e - b);
}

}  // namespace dbtouch
