#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <iomanip>
#include <mutex>

namespace dbtouch {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

/// Steady-clock micros since the first log line of the process — the same
/// monotonic timebase the trace spans and stage histograms use, so a log
/// line can be lined up against a span dump by timestamp.
std::int64_t MonotonicLogUs() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

/// Small dense per-thread id (1, 2, 3, ...) — stable within the process
/// and far easier to eyeball than std::thread::id hashes.
int LogThreadId() {
  static std::atomic<int> next{1};
  thread_local const int id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Serialises writes to the sink so concurrent server workers never
/// interleave partial lines. Each LogMessage formats into its own buffer
/// first; the lock covers only the final fputs.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    // "[    1.234567 T3 INFO file.cc:42] ..." — monotonic seconds since
    // process start plus the writing thread, so interleaved worker output
    // reads as a timeline.
    const std::int64_t t_us = MonotonicLogUs();
    stream_ << "[" << std::setw(5) << (t_us / 1'000'000) << "."
            << std::setfill('0') << std::setw(6) << (t_us % 1'000'000)
            << std::setfill(' ') << " T" << LogThreadId() << " "
            << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    const std::string line = stream_.str();
    const std::lock_guard<std::mutex> lock(SinkMutex());
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace dbtouch
