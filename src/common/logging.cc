#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace dbtouch {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

/// Serialises writes to the sink so concurrent server workers never
/// interleave partial lines. Each LogMessage formats into its own buffer
/// first; the lock covers only the final fputs.
std::mutex& SinkMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_log_level.load(std::memory_order_relaxed)),
      level_(level) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') {
        base = p + 1;
      }
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    const std::string line = stream_.str();
    const std::lock_guard<std::mutex> lock(SinkMutex());
    std::fputs(line.c_str(), stderr);
  }
}

}  // namespace internal
}  // namespace dbtouch
