// TouchServer: many concurrent dbTouch sessions over one shared dataset.
//
// The paper's system is one user, one thread. The server keeps the
// per-touch contract — every touch answered within an interactive bound —
// while multiplexing many sessions over a worker pool:
//
//   client traces --SubmitTrace--> per-session FIFO of work quanta
//                                   |  (one touch event = one quantum,
//                                   |   cost bounded by max_rows_per_touch)
//                              FrameScheduler (EDF across sessions)
//                                   |
//                              worker pool --> session kernel (serial per
//                                              session, shared SharedState)
//
// Deadline model. Each quantum gets a frame budget
//
//   budget = clamp(base / (1 + w_v * v),  min_budget,  base)
//   budget = max(budget, max_rows_per_touch * est_row_ns / 1000)
//
// where `base` is the device's inter-event interval (a touch should be
// served before the next one arrives), `v` the gesture speed in cm/s at
// that event (fast gestures expect snappier, coarser feedback — the
// paper's speed/precision trade) and the second line keeps deadlines
// honest: a budget below the cost of one full per-touch row budget would
// be unmeetable by construction. deadline = scheduled arrival + budget.
//
// Load shedding. A session that finishes a quantum late has its
// `shed_levels` raised, which makes sampling::ChooseLevel pick coarser
// sample-hierarchy levels for subsequent summaries (less data per touch);
// finishing on time decays it back. Quanta that are already hopelessly
// late (`drop_slack_us` past their deadline) or that overflow a session's
// admission bound are dropped outright — but only mid-gesture move quanta:
// gesture begin/end events always execute so recognizer state stays sound.

#ifndef DBTOUCH_SERVER_TOUCH_SERVER_H_
#define DBTOUCH_SERVER_TOUCH_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/kernel.h"
#include "core/shared_state.h"
#include "obs/histogram.h"
#include "obs/trace_recorder.h"
#include "server/api.h"
#include "server/frame_scheduler.h"
#include "server/server_stats.h"
#include "server/session_manager.h"
#include "sim/touch_event.h"
#include "storage/table.h"
#include "touch/view.h"

namespace dbtouch::server {

struct TouchServerConfig {
  /// Worker threads. 0 = hardware concurrency.
  int num_workers = 0;
  /// Kernel configuration applied to every opened session.
  core::KernelConfig session_defaults;
  /// Base frame budget per touch (us). 0 = the device's inter-event
  /// interval from session_defaults.device.
  sim::Micros base_frame_budget_us = 0;
  /// Floor of the speed-scaled budget.
  sim::Micros min_frame_budget_us = 4'000;
  /// Budget shrink per cm/s of gesture speed (w_v above).
  double speed_budget_weight = 0.05;
  /// Estimated per-row execution cost used for the budget floor.
  double est_row_ns = 2.0;
  /// A droppable quantum popped more than this past its deadline is shed
  /// instead of executed.
  sim::Micros drop_slack_us = 50'000;
  /// Ceiling for per-session level shedding.
  int max_shed_levels = 4;
  /// Per-session queue bound; droppable quanta beyond it are rejected at
  /// admission (overload protection for a client flooding the server).
  std::size_t max_session_queue = 4'096;
  /// Layout rotation physically rewrites the (shared) table, so it is
  /// disabled in server sessions unless explicitly allowed.
  bool allow_layout_rotation = false;
  /// Per-quantum lifecycle tracing (obs::TraceRecorder): every quantum's
  /// submit/dispatch/execute/suspend/fetch/resume/complete transitions
  /// land in a fixed ring, slow-quantum exemplars are retained, and
  /// trace_recorder()->DumpJson() yields a postmortem document. Off = the
  /// ring is never allocated and every hook is one null-pointer branch.
  bool enable_tracing = false;
  obs::TraceRecorderConfig trace;
  /// Async block fetch: a quantum that faults on a cold slow-tier block
  /// suspends (the EDF scheduler parks the session on the fetch and the
  /// worker serves other sessions) instead of blocking inside the fault.
  /// Off = the synchronous pre-PR-3 path, kept for A/B benchmarking.
  bool async_fetch = true;
  /// Deadline-sacred partial answers (paper Section 4): a quantum whose
  /// cold fetch is predicted — by the measured per-block fetch EWMA — to
  /// blow its deadline answers immediately from the resident sample level
  /// (result tagged partial=true) and a refinement quantum is re-queued to
  /// re-execute at full fidelity when the blocks land, instead of parking
  /// the session until the fetch completes. Opt-in: coarse first answers
  /// change result values mid-stream, so clients must understand the
  /// partial/refine_seq protocol (see src/server/README.md).
  bool partial_answers = false;
};

struct TraceSubmitOptions {
  /// true: release each touch at its position on the gesture's own
  /// timeline (replay at gesture speed — deadline misses then mean the
  /// server fell behind a live user). false: release everything
  /// immediately (flood/saturation mode; deadlines keep their
  /// timeline-relative values, so EDF still orders work sensibly and
  /// shedding engages under the backlog).
  bool paced = true;
};

// Thread-safety contract. TouchServer is shared by submitters, its own
// worker pool, fetch-completion callbacks and stats readers, so every
// public member documents its synchronisation; the audit below is part
// of the api-layer sweep and is what each accessor actually does:
//
//   - Call(...) overloads, OpenSession, CloseSession, CreateColumnObject,
//     CreateTableObject, SetAction, WithSession, Submit, SubmitTrace,
//     Drain, stats(): safe from any thread, any time. Session lookups go
//     through the SessionManager's mutex; kernel access takes that
//     session's exec_mu; queue operations take the scheduler's lock.
//   - session_count(): safe from any thread — it is
//     SessionManager::size(), which locks the manager's mutex (the
//     "reads sessions_ without synchronization" concern was a stale
//     doc smell, not a race; the lock was always there).
//   - running(): safe from any thread (atomic, acquire).
//   - Start()/Stop(): NOT safe to call concurrently with each other or
//     with themselves; serialise lifecycle transitions externally.
//     Submitting while stopped returns FailedPrecondition.
//   - num_workers(): safe only after Start() has returned and before
//     Stop() is entered (it reads the worker vector unsynchronised; the
//     vector only mutates inside Start/Stop).
//   - shared(): the SharedState reference itself is valid for the
//     server's lifetime; RegisterTable and the other SharedState methods
//     are internally synchronised, but SpillTable/reclaim calls follow
//     SharedState's own documented contract.
//   - trace_recorder(): safe from any thread (set once in the
//     constructor, never reassigned).
class TouchServer {
 public:
  explicit TouchServer(const TouchServerConfig& config = {});
  ~TouchServer();

  TouchServer(const TouchServer&) = delete;
  TouchServer& operator=(const TouchServer&) = delete;

  /// Spawns the worker pool. Tables may be registered before or after.
  Status Start();

  /// Drains nothing: pending quanta are abandoned. Call Drain() first for
  /// a graceful stop. Idempotent.
  Status Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int num_workers() const { return static_cast<int>(workers_.size()); }

  // ---- Shared data -------------------------------------------------------

  core::SharedState& shared() { return *shared_; }
  Status RegisterTable(std::shared_ptr<storage::Table> table) {
    return shared_->RegisterTable(std::move(table));
  }

  // ---- The versioned api surface (server/api.h) --------------------------
  //
  // One Call overload per request type. These are THE entry points: the
  // gateway decodes wire frames into these structs and calls them, and
  // every legacy convenience method below is a thin wrapper that builds
  // the matching request. Errors come back as Status; the gateway maps
  // them onto api::WireCode at the boundary.

  Result<api::OpenSessionResp> Call(const api::OpenSessionReq& req);
  Result<api::CloseSessionResp> Call(const api::CloseSessionReq& req);
  Result<api::CreateObjectResp> Call(const api::CreateObjectReq& req);
  Result<api::SetActionResp> Call(const api::SetActionReq& req);
  Result<api::SubmitBatchResp> Call(const api::SubmitBatchReq& req);
  Result<api::StatsResp> Call(const api::StatsReq& req);
  Result<api::SessionSnapshotResp> Call(const api::SessionSnapshotReq& req);

  // ---- Session lifecycle (wrappers over Call) ----------------------------

  Result<SessionId> OpenSession();
  Status CloseSession(SessionId id);
  /// Live session count; locks the session manager (see the class
  /// thread-safety contract above).
  std::size_t session_count() const { return sessions_.size(); }

  // ---- Session-scoped setup (serialised against that session's worker) --
  //
  // Deprecated for non-test use: new callers should go through
  // Call(api::CreateObjectReq/SetActionReq) — these remain as thin
  // wrappers for one release.

  Result<core::ObjectId> CreateColumnObject(SessionId session,
                                            const std::string& table,
                                            const std::string& column,
                                            const touch::RectCm& frame);
  Result<core::ObjectId> CreateTableObject(SessionId session,
                                           const std::string& table,
                                           const touch::RectCm& frame);
  Status SetAction(SessionId session, core::ObjectId object,
                   const core::ActionConfig& action);

  /// Runs `fn` with the session's kernel under the session lock — the
  /// inspection door. TESTS ONLY: production readers (benches, examples,
  /// the gateway) use Call(api::SessionSnapshotReq) for a typed,
  /// serialisable view instead of raw kernel access.
  Status WithSession(SessionId session,
                     const std::function<void(core::Kernel&)>& fn);

  // ---- The feed (wrappers over Call(api::SubmitBatchReq)) ----------------

  /// Queues one touch, due one frame budget from now.
  Status Submit(SessionId session, const sim::TouchEvent& event);

  /// Splits a gesture trace into per-touch work quanta with
  /// speed-derived frame deadlines and queues them.
  Status SubmitTrace(SessionId session, const sim::GestureTrace& trace,
                     const TraceSubmitOptions& options = {});

  /// Blocks until every queued quantum has executed or been shed.
  Status Drain();

  // ---- Observability -----------------------------------------------------

  ServerStatsSnapshot stats() const;

  /// The span recorder, or nullptr when config.enable_tracing is false.
  obs::TraceRecorder* trace_recorder() const { return trace_.get(); }

 private:
  void WorkerLoop();
  /// Parks `task`'s session and starts demand fetches for every block in
  /// `stall`; the last completion unparks the session (or flags it failed
  /// so the resume sheds the parked work).
  void SuspendOnStall(const TouchTask& task,
                      const std::shared_ptr<ServerSession>& session,
                      core::TouchStall stall);
  /// Partial-dispatch escape hatch: when the EWMA predicts `task`'s stall
  /// outlives its deadline, answers partially from the resident sample
  /// level and re-queues refinement quanta instead of parking. Returns
  /// the outcome of the last kernel drain attempt — kCompleted means the
  /// quantum finished on time with partial answers in place of the cold
  /// reads; kSuspended means the (remaining) stall was not eligible and
  /// the caller parks classically with `stall`. Caller holds no locks;
  /// takes the session's exec_mu internally.
  core::TouchOutcome TryPartialDispatch(
      TouchTask* task, const std::shared_ptr<ServerSession>& session,
      core::TouchStall* stall);
  /// Starts demand fetches for a refinement's stall WITHOUT parking the
  /// session; the last completion pushes a refine quantum (deadline =
  /// now + measured EWMA) back onto the session's queue.
  void StartRefinementFetches(const TouchTask& task,
                              const std::shared_ptr<ServerSession>& session,
                              core::TouchStall stall);
  /// Handles a popped refine quantum: RefineNext under exec_mu; a still-
  /// cold outcome re-fetches and re-queues, a permanent fetch failure
  /// abandons the refinement (the partial answer stands).
  void ExecuteRefinement(TouchTask* task,
                         const std::shared_ptr<ServerSession>& session);
  /// Smoothed per-block cold-fetch wall from the shared buffer pool (us);
  /// 0 until a fetch has settled.
  sim::Micros FetchEwmaUs() const;
  sim::Micros BaseBudgetUs() const;
  sim::Micros BudgetForSpeed(double speed_cm_s) const;
  /// True = admitted to the session queue, false = rejected at admission
  /// (the bound was hit); error = no such session / not running.
  Result<bool> Enqueue(SessionId session, const sim::TouchEvent& event,
                       sim::Micros release_us, sim::Micros deadline_us,
                       sim::Micros budget_us, bool droppable);

  /// Folds a finished quantum into the stage histograms (queue wait,
  /// execution, fetch stall, end-to-end) and, when tracing, records the
  /// kCompleted span and offers a slow-quantum exemplar.
  void RecordCompletion(const TouchTask& task, sim::Micros latency,
                        bool missed);

  TouchServerConfig config_;
  std::shared_ptr<core::SharedState> shared_;
  SessionManager sessions_;
  FrameScheduler scheduler_;
  std::vector<std::thread> workers_;
  std::atomic<bool> running_{false};

  /// Per-quantum lifecycle spans; null unless config_.enable_tracing.
  std::unique_ptr<obs::TraceRecorder> trace_;
  /// Server-unique quantum ids; tags trace spans across stages.
  std::atomic<std::int64_t> next_quantum_id_{1};

  /// Stage-latency histograms over EVERY executed touch (wait-free
  /// recording, fixed memory, no sample cap — the reservoir this replaces
  /// stopped reflecting steady state once it filled). queue wait + exec +
  /// fetch stall partition the end-to-end latency; see WorkerLoop.
  obs::Histogram queue_wait_hist_;
  obs::Histogram exec_hist_;
  obs::Histogram fetch_stall_hist_;
  obs::Histogram e2e_hist_;
  /// Refinement latency: partial answer's touch release -> full-fidelity
  /// result, per refinement quantum (the fidelity half of the deadline/
  /// fidelity contract; e2e_hist_ holds the latency half).
  obs::Histogram refine_hist_;
  std::atomic<std::int64_t> total_submitted_{0};
  std::atomic<std::int64_t> total_executed_{0};
  std::atomic<std::int64_t> total_dropped_{0};
  std::atomic<std::int64_t> total_misses_{0};
  /// Async read path accounting.
  std::atomic<std::int64_t> total_suspended_{0};
  std::atomic<std::int64_t> total_resumed_{0};
  std::atomic<std::int64_t> total_shed_on_fetch_error_{0};
  /// Suspend round trips saved by multi-attribute stalls (see
  /// FetchStatsSnapshot::batched_stall_attrs).
  std::atomic<std::int64_t> total_batched_stall_attrs_{0};
  /// Partial-answer path accounting: quanta answered coarsely at deadline
  /// pressure, refinement quanta completed, refinements shed on permanent
  /// fetch failure.
  std::atomic<std::int64_t> total_partial_{0};
  std::atomic<std::int64_t> total_refined_{0};
  std::atomic<std::int64_t> total_refine_shed_{0};
  /// Every refine quantum pushed by a fetch settle bumps this; Drain()
  /// uses it to detect refinements re-queued behind its WaitIdle pass.
  std::atomic<std::int64_t> refine_requeues_{0};
  /// Buffer-pressure shed bias: extra shed levels applied to every
  /// session while the pool runs near its byte budget (recomputed every
  /// few completions; reads are relaxed-atomic on the hot path).
  std::atomic<int> buffer_shed_bias_{0};
  std::atomic<std::int64_t> completions_since_pressure_check_{0};
};

}  // namespace dbtouch::server

#endif  // DBTOUCH_SERVER_TOUCH_SERVER_H_
