// Server-wide observability for the multi-session touch server: per-touch
// latency percentiles, deadline accounting, load-shedding counters and a
// cross-session fairness figure. Snapshots are coherent copies; nothing
// here hands out live references into worker state.

#ifndef DBTOUCH_SERVER_SERVER_STATS_H_
#define DBTOUCH_SERVER_SERVER_STATS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/histogram.h"
#include "sim/virtual_clock.h"

namespace dbtouch::server {

using SessionId = std::int64_t;

/// Per-session roll-up inside a ServerStatsSnapshot.
struct SessionStatsSnapshot {
  std::int64_t submitted = 0;
  std::int64_t executed = 0;
  std::int64_t dropped_quanta = 0;
  std::int64_t deadline_misses = 0;
  /// Quanta that parked on a cold block fetch instead of blocking.
  std::int64_t suspended_quanta = 0;
  /// Sample levels currently being shed for this session (0 = healthy).
  int shed_levels = 0;
  /// Mirrored from the session kernel under its lock.
  std::int64_t touch_events = 0;
  std::int64_t entries_returned = 0;
  std::int64_t rows_scanned = 0;
  /// Deadline-sacred mode: quanta answered coarsely from the resident
  /// sample level at deadline pressure, and refinement quanta completed.
  std::int64_t partial_quanta = 0;
  std::int64_t refined_quanta = 0;
};

/// Shared buffer-manager roll-up inside a ServerStatsSnapshot: how the
/// server-wide block cache (the bounded-memory read path) is behaving.
struct BufferStatsSnapshot {
  std::int64_t lookups = 0;
  std::int64_t hits = 0;
  /// Blocks faulted in from a backing store (base table or remote tier).
  std::int64_t faulted_blocks = 0;
  std::int64_t evictions = 0;
  /// Admissions skipped by the gesture-aware scan-bypass policy.
  std::int64_t bypasses = 0;
  /// Bytes currently retained, the high-water mark, and the budget they
  /// are bounded by.
  std::int64_t resident_bytes = 0;
  std::int64_t peak_resident_bytes = 0;
  std::int64_t budget_bytes = 0;
  /// Raw column storage resident OUTSIDE the pool, from
  /// storage::MemoryTracker: table matrices (drops to ~0 for a table
  /// spilled with reclamation) and standalone columns (sample-hierarchy
  /// copies and the like). The pool budget is the real memory ceiling
  /// only when tracked_matrix_bytes of the served tables is gone.
  std::int64_t tracked_matrix_bytes = 0;
  std::int64_t tracked_column_bytes = 0;

  double hit_rate() const {
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }
};

/// Async block-fetch pipeline roll-up: the FetchQueue behind the shared
/// BufferManager plus the server-side suspend/resume accounting.
struct FetchStatsSnapshot {
  /// Quanta that suspended on cold blocks (their worker served other
  /// sessions while the fetch ran) and resumes executed after completion.
  std::int64_t suspended_quanta = 0;
  std::int64_t resumed_quanta = 0;
  /// Demand fetches (a session parked on the block) and low-priority
  /// prefetch warm-ups along the extrapolated slide path.
  std::int64_t demand_fetches = 0;
  std::int64_t prefetch_fetches = 0;
  /// Transient-error retries: async fetcher retries plus retries spent by
  /// synchronous (blocking-path) fills.
  std::int64_t retries = 0;
  /// Fetches that failed past their bounded retries.
  std::int64_t fetch_errors = 0;
  /// Gesture executions shed because their blocks never arrived.
  std::int64_t shed_on_fetch_error = 0;
  /// Queued demand fetches retracted because their session closed.
  std::int64_t cancelled_fetches = 0;
  /// In-flight fetches whose retry loop a session close cut short (capped
  /// at one attempt instead of a full retry budget).
  std::int64_t aborted_fetches = 0;
  /// Pre-formed ranged warm-up tickets issued along extrapolated slide
  /// paths (>= 2 blocks riding one ReadRange each).
  std::int64_t prefetch_ranges = 0;
  /// Suspend round trips saved by multi-attribute stalls: a fat-table
  /// quantum whose probe missed on N sources suspends once, not N times;
  /// each such suspend adds N - 1 here.
  std::int64_t batched_stall_attrs = 0;
  /// Batched demand fetches: adjacent cold misses coalesced into single
  /// provider range reads (async queue + blocking Preload combined), the
  /// blocks those ranged reads covered, and the payload bytes faulted in
  /// from the cold tier (disk or remote) by the async pipeline.
  std::int64_t ranged_reads = 0;
  std::int64_t ranged_blocks = 0;
  std::int64_t bytes_fetched = 0;
  /// Wall time inside provider fetches (incl. retry backoff).
  sim::Micros fetch_wall_us = 0;
  sim::Micros max_fetch_wall_us = 0;
  /// Smoothed per-block cold-fetch wall (us); what the deadline-sacred
  /// scheduler consults to predict whether a park blows the deadline.
  sim::Micros ewma_block_fetch_us = 0;

  double avg_fetch_ms() const {
    const std::int64_t n = demand_fetches + prefetch_fetches;
    return n == 0 ? 0.0
                  : static_cast<double>(fetch_wall_us) / 1e3 /
                        static_cast<double>(n);
  }
};

/// Where a frame's budget went, across every executed quantum: exact-bucket
/// latency histograms per pipeline stage. The stages partition the
/// end-to-end latency (queue wait + in-kernel execution + parked-on-fetch
/// stall = end-to-end, up to bucket quantisation), so a p99 regression can
/// be attributed to queueing, kernel work or cold fetches instead of being
/// one opaque number.
struct StageLatencySnapshot {
  /// Scheduled release -> first dispatch to a worker.
  obs::HistogramSnapshot queue_wait;
  /// Time inside kernel execution, summed across suspend/resume cycles.
  obs::HistogramSnapshot exec;
  /// Time parked on cold-block fetches (park -> re-dispatch), summed
  /// across cycles; zero for quanta that never suspended.
  obs::HistogramSnapshot fetch_stall;
  /// Scheduled release -> completion: what a live user waited.
  obs::HistogramSnapshot e2e;
  /// Partial answer's touch release -> full-fidelity refinement, per
  /// refinement quantum; empty unless partial_answers is enabled.
  obs::HistogramSnapshot refine;
};

struct ServerStatsSnapshot {
  std::int64_t sessions_opened = 0;
  std::int64_t sessions_active = 0;
  std::int64_t submitted = 0;
  std::int64_t executed = 0;
  /// Quanta discarded outright (admission overflow or hopelessly late).
  std::int64_t dropped_quanta = 0;
  /// Touches that executed but completed after their frame deadline.
  std::int64_t deadline_misses = 0;
  /// Deadline-sacred mode accounting: quanta answered coarsely at
  /// deadline pressure, refinement quanta completed at full fidelity, and
  /// refinements abandoned on permanent fetch failure (the partial answer
  /// stood). All zero with partial_answers off.
  std::int64_t partial_answers = 0;
  std::int64_t refinements = 0;
  std::int64_t refinements_shed = 0;
  /// Latency = completion - scheduled arrival, steady-clock micros.
  /// Derived from stages.e2e (exact-bucket percentiles over EVERY executed
  /// touch — no sample cap, no reservoir bias); kept as top-level fields
  /// because they are the headline numbers.
  sim::Micros p50_latency_us = 0;
  sim::Micros p99_latency_us = 0;
  sim::Micros max_latency_us = 0;
  /// Per-stage latency histograms over all executed touches.
  StageLatencySnapshot stages;
  /// Jain's fairness index over per-session executed touches: 1.0 =
  /// perfectly even service, 1/n = one session starving the rest.
  double fairness = 1.0;
  /// The shared BufferManager all sessions read base data through.
  BufferStatsSnapshot buffer;
  /// The async block-fetch pipeline (zeros when async_fetch is off).
  FetchStatsSnapshot fetch;
  std::map<SessionId, SessionStatsSnapshot> per_session;

  double miss_rate() const {
    return executed == 0 ? 0.0
                         : static_cast<double>(deadline_misses) /
                               static_cast<double>(executed);
  }

  /// The whole snapshot as one JSON document (counters, buffer/fetch
  /// roll-ups, per-stage histograms, per-session table) — the
  /// machine-readable form BENCH_*.json and postmortem dumps build on.
  /// `include_buckets` adds the sparse bucket arrays of each histogram.
  std::string ToJson(bool include_buckets = false) const;
};

/// Percentile over a scratch copy (nth_element reorders it).
sim::Micros LatencyPercentile(std::vector<sim::Micros> samples, double p);

/// Jain's index (sum x)^2 / (n * sum x^2); 1.0 for empty/uniform input.
double JainFairness(const std::vector<std::int64_t>& executed_per_session);

}  // namespace dbtouch::server

#endif  // DBTOUCH_SERVER_SERVER_STATS_H_
