#include "server/server_stats.h"

#include <algorithm>
#include <cmath>

namespace dbtouch::server {

sim::Micros LatencyPercentile(std::vector<sim::Micros> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

double JainFairness(const std::vector<std::int64_t>& executed_per_session) {
  if (executed_per_session.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::int64_t x : executed_per_session) {
    const double v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) /
         (static_cast<double>(executed_per_session.size()) * sum_sq);
}

}  // namespace dbtouch::server
