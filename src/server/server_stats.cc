#include "server/server_stats.h"

#include <algorithm>
#include <cmath>

#include "obs/json.h"

namespace dbtouch::server {

namespace {

void AppendStage(obs::JsonWriter& writer, std::string_view name,
                 const obs::HistogramSnapshot& stage, bool include_buckets) {
  writer.Key(name);
  stage.AppendJson(writer, include_buckets);
}

}  // namespace

std::string ServerStatsSnapshot::ToJson(bool include_buckets) const {
  obs::JsonWriter writer;
  writer.BeginObject();
  writer.Field("sessions_opened", sessions_opened);
  writer.Field("sessions_active", sessions_active);
  writer.Field("submitted", submitted);
  writer.Field("executed", executed);
  writer.Field("dropped_quanta", dropped_quanta);
  writer.Field("deadline_misses", deadline_misses);
  writer.Field("miss_rate", miss_rate());
  writer.Field("partial_answers", partial_answers);
  writer.Field("refinements", refinements);
  writer.Field("refinements_shed", refinements_shed);
  writer.Field("p50_latency_us", p50_latency_us);
  writer.Field("p99_latency_us", p99_latency_us);
  writer.Field("max_latency_us", max_latency_us);
  writer.Field("fairness", fairness);
  writer.Key("stages");
  writer.BeginObject();
  AppendStage(writer, "queue_wait", stages.queue_wait, include_buckets);
  AppendStage(writer, "exec", stages.exec, include_buckets);
  AppendStage(writer, "fetch_stall", stages.fetch_stall, include_buckets);
  AppendStage(writer, "e2e", stages.e2e, include_buckets);
  AppendStage(writer, "refine", stages.refine, include_buckets);
  writer.EndObject();
  writer.Key("buffer");
  writer.BeginObject();
  writer.Field("lookups", buffer.lookups);
  writer.Field("hits", buffer.hits);
  writer.Field("hit_rate", buffer.hit_rate());
  writer.Field("faulted_blocks", buffer.faulted_blocks);
  writer.Field("evictions", buffer.evictions);
  writer.Field("bypasses", buffer.bypasses);
  writer.Field("resident_bytes", buffer.resident_bytes);
  writer.Field("peak_resident_bytes", buffer.peak_resident_bytes);
  writer.Field("budget_bytes", buffer.budget_bytes);
  writer.Field("tracked_matrix_bytes", buffer.tracked_matrix_bytes);
  writer.Field("tracked_column_bytes", buffer.tracked_column_bytes);
  writer.EndObject();
  writer.Key("fetch");
  writer.BeginObject();
  writer.Field("suspended_quanta", fetch.suspended_quanta);
  writer.Field("resumed_quanta", fetch.resumed_quanta);
  writer.Field("demand_fetches", fetch.demand_fetches);
  writer.Field("prefetch_fetches", fetch.prefetch_fetches);
  writer.Field("retries", fetch.retries);
  writer.Field("fetch_errors", fetch.fetch_errors);
  writer.Field("shed_on_fetch_error", fetch.shed_on_fetch_error);
  writer.Field("cancelled_fetches", fetch.cancelled_fetches);
  writer.Field("aborted_fetches", fetch.aborted_fetches);
  writer.Field("prefetch_ranges", fetch.prefetch_ranges);
  writer.Field("batched_stall_attrs", fetch.batched_stall_attrs);
  writer.Field("ranged_reads", fetch.ranged_reads);
  writer.Field("ranged_blocks", fetch.ranged_blocks);
  writer.Field("bytes_fetched", fetch.bytes_fetched);
  writer.Field("fetch_wall_us", fetch.fetch_wall_us);
  writer.Field("max_fetch_wall_us", fetch.max_fetch_wall_us);
  writer.Field("ewma_block_fetch_us", fetch.ewma_block_fetch_us);
  writer.Field("avg_fetch_ms", fetch.avg_fetch_ms());
  writer.EndObject();
  writer.Key("per_session");
  writer.BeginObject();
  for (const auto& [id, s] : per_session) {
    writer.Key(std::to_string(id));
    writer.BeginObject();
    writer.Field("submitted", s.submitted);
    writer.Field("executed", s.executed);
    writer.Field("dropped_quanta", s.dropped_quanta);
    writer.Field("deadline_misses", s.deadline_misses);
    writer.Field("suspended_quanta", s.suspended_quanta);
    writer.Field("shed_levels", static_cast<std::int64_t>(s.shed_levels));
    writer.Field("touch_events", s.touch_events);
    writer.Field("entries_returned", s.entries_returned);
    writer.Field("rows_scanned", s.rows_scanned);
    writer.Field("partial_quanta", s.partial_quanta);
    writer.Field("refined_quanta", s.refined_quanta);
    writer.EndObject();
  }
  writer.EndObject();
  writer.EndObject();
  return std::move(writer).str();
}

sim::Micros LatencyPercentile(std::vector<sim::Micros> samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  p = std::clamp(p, 0.0, 1.0);
  const std::size_t rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1));
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(rank),
                   samples.end());
  return samples[rank];
}

double JainFairness(const std::vector<std::int64_t>& executed_per_session) {
  if (executed_per_session.empty()) {
    return 1.0;
  }
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const std::int64_t x : executed_per_session) {
    const double v = static_cast<double>(x);
    sum += v;
    sum_sq += v * v;
  }
  if (sum_sq == 0.0) {
    return 1.0;
  }
  return (sum * sum) /
         (static_cast<double>(executed_per_session.size()) * sum_sq);
}

}  // namespace dbtouch::server
