// FrameScheduler: earliest-deadline-first dispatch of touch work quanta
// across sessions.
//
// dbTouch's contract is per-touch: "the speed of the gesture dictates the
// amount of data processed", and every touch must be answered within an
// interactive bound. Multiplexed over many sessions, that bound becomes a
// frame deadline per queued touch. The scheduler keeps one FIFO queue per
// session (a session's touches must execute in gesture order — the
// recognizer and virtual clock are stateful) and picks, among sessions
// that are not currently executing and whose head task is released, the
// one whose head has the earliest deadline. EDF is optimal for meeting
// deadlines on a uniprocessor and degrades gracefully with a pool.
//
// A task's `release_us` models the touch's scheduled arrival (paced trace
// replay releases events on the gesture's own timeline); a task is never
// handed to a worker before it. Tasks marked `droppable` (mid-gesture
// move quanta) may be shed by the caller when hopelessly late; gesture
// begin/end events are never droppable because dropping them would wedge
// the session's recognizer state machine.

#ifndef DBTOUCH_SERVER_FRAME_SCHEDULER_H_
#define DBTOUCH_SERVER_FRAME_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <set>

#include "obs/trace_recorder.h"
#include "sim/touch_event.h"
#include "sim/virtual_clock.h"

namespace dbtouch::server {

/// One bounded work quantum: a single touch event for one session. The
/// per-touch row budget (`max_rows_per_touch`) bounds its execution cost,
/// so a quantum is the natural shedding and scheduling unit.
struct TouchTask {
  std::int64_t session_id = 0;
  sim::TouchEvent event;
  /// Steady-clock micros of the scheduled arrival; not runnable before.
  sim::Micros release_us = 0;
  /// Steady-clock micros by which the touch should have completed.
  sim::Micros deadline_us = 0;
  /// deadline - release: the frame budget this task was given.
  sim::Micros budget_us = 0;
  /// Mid-gesture move quantum: may be shed under overload.
  bool droppable = false;
  /// Resume marker: the quantum suspended on a cold block fetch and its
  /// touch was already consumed by the recognizer — the worker re-enters
  /// via Kernel::ResumePending instead of feeding the event again.
  bool resume = false;
  /// Refinement quantum: a prior quantum already answered partially at
  /// its deadline; this one re-executes the touch at full fidelity via
  /// Kernel::RefineNext. Never droppable (the partial answer promised a
  /// refinement), and its deadline is the original deadline extended by
  /// the measured per-block fetch EWMA — fidelity waits exactly as long
  /// as the tier demonstrably needs, no longer.
  bool refine = false;
  /// For refinement quanta: release_us of the quantum that produced the
  /// partial answer, so refinement latency is measured from the user's
  /// touch, not from the re-queue.
  sim::Micros origin_release_us = 0;
  /// Server-assigned id, unique across sessions; tags this quantum's trace
  /// spans (0 = untraced path).
  std::int64_t quantum_id = 0;
  /// Stage-latency accounting, maintained by the TouchServer worker loop
  /// and carried across suspend/resume cycles: the instant of the first
  /// dispatch (-1 = never dispatched), accumulated in-kernel execution
  /// time, accumulated parked-on-fetch time, and the instant the quantum
  /// last parked (-1 = not parked). queue wait + exec + stall add up to
  /// the end-to-end latency by construction; see TouchServer::WorkerLoop.
  sim::Micros first_dispatch_us = -1;
  sim::Micros exec_accum_us = 0;
  sim::Micros stall_accum_us = 0;
  sim::Micros parked_at_us = -1;
};

class FrameScheduler {
 public:
  FrameScheduler() = default;

  FrameScheduler(const FrameScheduler&) = delete;
  FrameScheduler& operator=(const FrameScheduler&) = delete;

  /// Enqueues a task on its session's FIFO queue.
  void Push(TouchTask task);

  /// Enqueues at the FRONT of the session queue — for refinement quanta,
  /// which must not wait out every not-yet-released touch behind them in
  /// the FIFO. Safe ahead of a parked resume task: refinements execute
  /// through their own kernel path and leave the parked gesture state
  /// untouched. Ordinary touch quanta must use Push (gesture order).
  void PushFront(TouchTask task);

  /// Blocks until a task is runnable (released, session not executing) and
  /// returns the earliest-deadline one; nullopt once Shutdown() is called.
  /// The session is marked busy until OnTaskDone(session_id).
  std::optional<TouchTask> PopRunnable();

  /// Re-arms `session_id` after a popped task was executed or shed.
  void OnTaskDone(std::int64_t session_id);

  /// Parks the popped task's session on an async block fetch: the task
  /// (marked resume) returns to the FRONT of its session queue — gesture
  /// order is sacred — the session is skipped by PopRunnable until
  /// Unpark, and its busy mark drops so the worker is immediately free
  /// for other sessions. This is how a fetch fills the idle slot instead
  /// of stalling a worker.
  void ParkForFetch(TouchTask task);

  /// Fetch completion: the session's head task becomes runnable again.
  /// Unknown / already-unparked sessions are a no-op (the session may
  /// have closed while its fetch was in flight).
  void Unpark(std::int64_t session_id);

  /// Sessions currently parked on a fetch.
  std::size_t parked() const;

  /// Discards all queued tasks of a closing session. Returns how many.
  std::size_t DropSession(std::int64_t session_id);

  /// Queued tasks for one session (admission control input).
  std::size_t PendingOf(std::int64_t session_id) const;

  /// Queued tasks across all sessions (excludes the one in flight).
  std::size_t pending() const;

  /// Blocks until no task is queued or in flight (or shutdown).
  void WaitIdle();

  /// Wakes all waiters; PopRunnable returns nullopt from now on.
  void Shutdown();

  /// Clears the shutdown flag and discards any leftover queue state so a
  /// stopped server can start again. Only call with no workers running.
  void Restart();

  /// Enqueues only if the session's queue holds fewer than `bound` tasks
  /// (check and push under one lock — the admission-control primitive).
  /// Returns false if the task was rejected.
  bool PushIfUnder(TouchTask task, std::size_t bound);

  /// Trace hook: dispatch / park / unpark transitions are recorded when
  /// set. Wire it before workers start (plain pointer, not re-settable
  /// while PopRunnable may run concurrently); null = tracing off, one
  /// branch per transition.
  void set_trace_recorder(obs::TraceRecorder* recorder) {
    trace_ = recorder;
  }

 private:
  bool IdleLocked() const;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::int64_t, std::deque<TouchTask>> queues_;
  /// Sessions with a popped task not yet reported done.
  std::set<std::int64_t> busy_;
  /// Sessions waiting on a block fetch; not runnable until Unpark.
  std::set<std::int64_t> parked_;
  bool shutdown_ = false;
  obs::TraceRecorder* trace_ = nullptr;
};

/// Steady-clock micros since an arbitrary epoch; the time base for
/// release/deadline fields.
sim::Micros SteadyNowUs();

}  // namespace dbtouch::server

#endif  // DBTOUCH_SERVER_FRAME_SCHEDULER_H_
