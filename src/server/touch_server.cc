#include "server/touch_server.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/logging.h"
#include "common/macros.h"
#include "storage/memory_tracker.h"

namespace dbtouch::server {

namespace {

/// Clamp helper for shed level updates.
int ClampShed(int value, int max_shed) {
  return std::clamp(value, 0, max_shed);
}

}  // namespace

namespace {

/// The shared pool serves every worker; widen its lock sharding unless the
/// configuration already asked for more.
cache::BufferManagerConfig ServerBufferConfig(
    const TouchServerConfig& config) {
  cache::BufferManagerConfig buffer = config.session_defaults.buffer;
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  buffer.shards = std::max(buffer.shards, std::max(hw, 8));
  // One switch governs the whole pipeline: the pool's fetch queue and the
  // kernels' suspend-on-miss behaviour (set per session in OpenSession).
  buffer.async_fetch = config.async_fetch;
  return buffer;
}

}  // namespace

TouchServer::TouchServer(const TouchServerConfig& config)
    : config_(config),
      shared_(std::make_shared<core::SharedState>(
          config.session_defaults.sampling, /*force_eager=*/true,
          ServerBufferConfig(config))),
      sessions_(shared_) {
  if (config_.enable_tracing) {
    trace_ = std::make_unique<obs::TraceRecorder>(config_.trace);
    // Wire every stage of the request path before any worker or fetcher
    // can run: EDF dispatch/park/unpark, fetcher reads, and (per session
    // in OpenSession) the kernels' suspend transitions.
    scheduler_.set_trace_recorder(trace_.get());
    shared_->buffer_manager().SetTraceRecorder(trace_.get());
  }
}

TouchServer::~TouchServer() { (void)Stop(); }

Status TouchServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  int workers = config_.num_workers;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) {
      workers = 1;
    }
  }
  // A restart after Stop(): clear the scheduler's shutdown latch (and any
  // quanta abandoned by the previous run) before workers spawn.
  scheduler_.Restart();
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  DBTOUCH_LOG(kInfo) << "touch server started with " << workers
                     << " workers";
  return Status::OK();
}

Status TouchServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) {
    return Status::OK();
  }
  running_.store(false, std::memory_order_release);
  scheduler_.Shutdown();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  // No worker can start new fetches now; wait out in-flight completions
  // (they call back into this server's scheduler) before returning.
  shared_->buffer_manager().WaitForFetches();
  return Status::OK();
}

// ---- The api surface: one Call overload per request type -------------------

Result<api::OpenSessionResp> TouchServer::Call(const api::OpenSessionReq&) {
  core::KernelConfig config = config_.session_defaults;
  if (!config_.allow_layout_rotation) {
    // Rotation rewrites the shared table's physical layout; an effectively
    // unreachable trigger angle disables it without a special kernel mode.
    config.rotation_trigger_rad = 1e9;
  }
  config.non_blocking_faults = config_.async_fetch;
  DBTOUCH_ASSIGN_OR_RETURN(const SessionId id, sessions_.Open(config));
  if (trace_ != nullptr) {
    const auto s = sessions_.Get(id);
    if (s.ok()) {
      const std::lock_guard<std::mutex> lock((*s)->exec_mu());
      (*s)->kernel().set_trace_recorder(trace_.get(), id);
    }
  }
  api::OpenSessionResp resp;
  resp.session = id;
  return resp;
}

Result<api::CloseSessionResp> TouchServer::Call(
    const api::CloseSessionReq& req) {
  const std::size_t dropped = scheduler_.DropSession(req.session);
  if (dropped > 0) {
    total_dropped_.fetch_add(static_cast<std::int64_t>(dropped),
                             std::memory_order_relaxed);
  }
  // Retract the session's still-queued demand fetches: nobody will claim
  // the blocks, so letting them run would spend cold-tier bandwidth on a
  // dead session. In-flight fetches settle normally (their completions
  // unpark via the scheduler, which no-ops for closed sessions).
  shared_->buffer_manager().CancelFetches(
      static_cast<std::uint64_t>(req.session));
  DBTOUCH_RETURN_IF_ERROR(sessions_.Close(req.session));
  return api::CloseSessionResp{};
}

Result<api::CreateObjectResp> TouchServer::Call(
    const api::CreateObjectReq& req) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<ServerSession> s,
                           sessions_.Get(req.session));
  const touch::RectCm frame{req.frame.x, req.frame.y, req.frame.width,
                            req.frame.height};
  const std::lock_guard<std::mutex> lock(s->exec_mu());
  api::CreateObjectResp resp;
  if (req.kind == 0) {
    DBTOUCH_ASSIGN_OR_RETURN(
        resp.object, s->kernel().CreateColumnObject(req.table, req.column,
                                                    frame));
  } else if (req.kind == 1) {
    DBTOUCH_ASSIGN_OR_RETURN(resp.object,
                             s->kernel().CreateTableObject(req.table, frame));
  } else {
    return Status::InvalidArgument("unknown object kind " +
                                   std::to_string(req.kind));
  }
  return resp;
}

Result<api::SetActionResp> TouchServer::Call(const api::SetActionReq& req) {
  core::ActionConfig action;
  if (req.action.kind > static_cast<std::uint8_t>(core::ActionKind::kGroupBy)) {
    return Status::InvalidArgument("unknown action kind " +
                                   std::to_string(req.action.kind));
  }
  if (req.action.agg > static_cast<std::uint8_t>(exec::AggKind::kStdDev)) {
    return Status::InvalidArgument("unknown aggregate kind " +
                                   std::to_string(req.action.agg));
  }
  action.kind = static_cast<core::ActionKind>(req.action.kind);
  action.agg = static_cast<exec::AggKind>(req.action.agg);
  action.summary_k = req.action.summary_k;
  if (req.action.has_predicate) {
    if (req.action.predicate_op >
        static_cast<std::uint8_t>(exec::CompareOp::kBetween)) {
      return Status::InvalidArgument("unknown predicate op " +
                                     std::to_string(req.action.predicate_op));
    }
    const auto op = static_cast<exec::CompareOp>(req.action.predicate_op);
    action.predicate =
        op == exec::CompareOp::kBetween
            ? exec::Predicate(req.action.predicate_lo,
                              req.action.predicate_hi)
            : exec::Predicate(op, req.action.predicate_lo);
  }
  action.use_zone_map = req.action.use_zone_map;
  action.group_key_attribute = req.action.group_key_attribute;
  action.group_value_attribute = req.action.group_value_attribute;
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<ServerSession> s,
                           sessions_.Get(req.session));
  const std::lock_guard<std::mutex> lock(s->exec_mu());
  DBTOUCH_RETURN_IF_ERROR(s->kernel().SetAction(req.object, action));
  return api::SetActionResp{};
}

Result<api::SubmitBatchResp> TouchServer::Call(
    const api::SubmitBatchReq& req) {
  api::SubmitBatchResp resp;
  if (req.events.empty()) {
    return resp;
  }
  const sim::Micros epoch = SteadyNowUs();
  const sim::Micros t0 = req.events.front().timestamp_us;
  const api::WireTouchEvent* prev = nullptr;
  for (const api::WireTouchEvent& wire : req.events) {
    const sim::TouchEvent event = api::FromWire(wire);
    // Gesture speed at this event, from the batch itself (the server sees
    // raw touches; it cannot wait for the recognizer's smoothed velocity).
    double speed_cm_s = 0.0;
    if (prev != nullptr && wire.timestamp_us > prev->timestamp_us &&
        wire.finger_id == prev->finger_id) {
      speed_cm_s =
          sim::DistanceCm(event.position,
                          sim::PointCm{prev->x_cm, prev->y_cm}) /
          sim::MicrosToSeconds(wire.timestamp_us - prev->timestamp_us);
    }
    prev = &wire;
    const sim::Micros offset = wire.timestamp_us - t0;
    const sim::Micros budget = BudgetForSpeed(speed_cm_s);
    const sim::Micros arrival = epoch + offset;
    const sim::Micros release = req.paced ? arrival : epoch;
    DBTOUCH_ASSIGN_OR_RETURN(
        const bool admitted,
        Enqueue(req.session, event, release, arrival + budget, budget,
                event.phase == sim::TouchPhase::kMoved));
    if (admitted) {
      ++resp.accepted;
    } else {
      ++resp.rejected;
    }
  }
  return resp;
}

Result<api::StatsResp> TouchServer::Call(const api::StatsReq&) {
  api::StatsResp resp;
  resp.sessions_active = static_cast<std::int64_t>(sessions_.size());
  resp.submitted = total_submitted_.load(std::memory_order_relaxed);
  resp.executed = total_executed_.load(std::memory_order_relaxed);
  resp.dropped_quanta = total_dropped_.load(std::memory_order_relaxed);
  resp.deadline_misses = total_misses_.load(std::memory_order_relaxed);
  const obs::HistogramSnapshot e2e = e2e_hist_.Snapshot();
  resp.p50_latency_us = e2e.Percentile(0.50);
  resp.p99_latency_us = e2e.Percentile(0.99);
  resp.suspended_quanta = total_suspended_.load(std::memory_order_relaxed);
  const cache::BlockCacheStats buffer = shared_->buffer_manager().stats();
  resp.buffer_hits = buffer.hits;
  resp.buffer_lookups = buffer.lookups;
  return resp;
}

Result<api::SessionSnapshotResp> TouchServer::Call(
    const api::SessionSnapshotReq& req) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<ServerSession> s,
                           sessions_.Get(req.session));
  api::SessionSnapshotResp resp;
  resp.session = req.session;
  resp.shed_levels = s->shed_levels.load(std::memory_order_relaxed);
  const std::lock_guard<std::mutex> lock(s->exec_mu());
  core::Kernel& kernel = s->kernel();
  for (const core::ObjectId id : kernel.ListObjects()) {
    const auto view = kernel.object_view(id);
    if (!view.ok()) {
      continue;  // Destroyed between ListObjects and here (same lock, so
                 // only possible for ids invalidated by the kernel itself).
    }
    const touch::DataObjectView& v = **view;
    api::ObjectInfo info;
    info.object = id;
    info.kind = static_cast<std::uint8_t>(v.kind());
    info.orientation = static_cast<std::uint8_t>(v.orientation());
    info.table = v.table_name();
    info.column = v.column_index().has_value()
                      ? static_cast<std::int64_t>(*v.column_index())
                      : -1;
    info.frame = api::WireRect{v.frame().x, v.frame().y, v.frame().width,
                               v.frame().height};
    info.tuple_count = v.tuple_count();
    resp.objects.push_back(std::move(info));
  }
  const core::KernelStats& k = kernel.stats();
  resp.touch_events = k.touch_events;
  resp.gesture_events = k.gesture_events;
  resp.entries_returned = k.entries_returned;
  resp.rows_scanned = k.rows_scanned;
  resp.rows_pruned = k.rows_pruned;
  resp.suspensions = k.suspensions;
  resp.fetch_errors = k.fetch_errors;
  resp.partial_answers = k.partial_answers;
  resp.refinements = k.refinements;
  const auto& items = kernel.results().items();
  resp.result_count = static_cast<std::int64_t>(items.size());
  if (req.max_results > 0 && !items.empty()) {
    const std::size_t take = std::min<std::size_t>(
        items.size(), static_cast<std::size_t>(req.max_results));
    resp.results.reserve(take);
    for (std::size_t i = items.size() - take; i < items.size(); ++i) {
      const core::ResultItem& item = items[i];
      api::ResultInfo info;
      info.object = item.object;
      info.kind = static_cast<std::uint8_t>(item.kind);
      info.row = item.row;
      // Results carry int64 or double scalars; string results (none
      // today) would CHECK in ToDouble, so guard them to 0.
      info.value = item.value.is_string() ? 0.0 : item.value.ToDouble();
      info.approximate = item.approximate;
      info.partial = item.partial;
      info.refine_seq = item.refine_seq;
      resp.results.push_back(info);
    }
  }
  return resp;
}

// ---- Legacy convenience wrappers -------------------------------------------

Result<SessionId> TouchServer::OpenSession() {
  DBTOUCH_ASSIGN_OR_RETURN(const api::OpenSessionResp resp,
                           Call(api::OpenSessionReq{}));
  return resp.session;
}

Status TouchServer::CloseSession(SessionId id) {
  api::CloseSessionReq req;
  req.session = id;
  return Call(req).status();
}

Result<core::ObjectId> TouchServer::CreateColumnObject(
    SessionId session, const std::string& table, const std::string& column,
    const touch::RectCm& frame) {
  api::CreateObjectReq req;
  req.session = session;
  req.kind = 0;
  req.table = table;
  req.column = column;
  req.frame = api::WireRect{frame.x, frame.y, frame.width, frame.height};
  DBTOUCH_ASSIGN_OR_RETURN(const api::CreateObjectResp resp, Call(req));
  return resp.object;
}

Result<core::ObjectId> TouchServer::CreateTableObject(
    SessionId session, const std::string& table,
    const touch::RectCm& frame) {
  api::CreateObjectReq req;
  req.session = session;
  req.kind = 1;
  req.table = table;
  req.frame = api::WireRect{frame.x, frame.y, frame.width, frame.height};
  DBTOUCH_ASSIGN_OR_RETURN(const api::CreateObjectResp resp, Call(req));
  return resp.object;
}

Status TouchServer::SetAction(SessionId session, core::ObjectId object,
                              const core::ActionConfig& action) {
  api::SetActionReq req;
  req.session = session;
  req.object = object;
  req.action.kind = static_cast<std::uint8_t>(action.kind);
  req.action.agg = static_cast<std::uint8_t>(action.agg);
  req.action.summary_k = action.summary_k;
  if (action.predicate.has_value()) {
    req.action.has_predicate = true;
    req.action.predicate_op =
        static_cast<std::uint8_t>(action.predicate->op());
    req.action.predicate_lo = action.predicate->lo();
    req.action.predicate_hi = action.predicate->hi();
  }
  req.action.use_zone_map = action.use_zone_map;
  req.action.group_key_attribute =
      static_cast<std::uint32_t>(action.group_key_attribute);
  req.action.group_value_attribute =
      static_cast<std::uint32_t>(action.group_value_attribute);
  return Call(req).status();
}

Status TouchServer::WithSession(
    SessionId session, const std::function<void(core::Kernel&)>& fn) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<ServerSession> s,
                           sessions_.Get(session));
  const std::lock_guard<std::mutex> lock(s->exec_mu());
  fn(s->kernel());
  return Status::OK();
}

sim::Micros TouchServer::BaseBudgetUs() const {
  if (config_.base_frame_budget_us > 0) {
    return config_.base_frame_budget_us;
  }
  const double hz = config_.session_defaults.device.touch_event_hz;
  return hz > 0.0 ? static_cast<sim::Micros>(1e6 / hz) : 66'667;
}

sim::Micros TouchServer::BudgetForSpeed(double speed_cm_s) const {
  const double base = static_cast<double>(BaseBudgetUs());
  double budget =
      base / (1.0 + config_.speed_budget_weight * std::max(speed_cm_s, 0.0));
  // Explicit ordering instead of std::clamp: a configured floor above the
  // base must not invert the bounds (clamp with lo > hi is UB).
  const double floor_us = std::min(
      static_cast<double>(config_.min_frame_budget_us), base);
  budget = std::max(std::min(budget, base), floor_us);
  // A deadline below the cost of one full row budget is unmeetable; the
  // floor keeps "miss" meaning "overloaded", not "misconfigured".
  const double cost_floor_us =
      static_cast<double>(config_.session_defaults.max_rows_per_touch) *
      config_.est_row_ns / 1'000.0;
  return static_cast<sim::Micros>(std::max(budget, cost_floor_us));
}

Result<bool> TouchServer::Enqueue(SessionId session,
                                  const sim::TouchEvent& event,
                                  sim::Micros release_us,
                                  sim::Micros deadline_us,
                                  sim::Micros budget_us, bool droppable) {
  DBTOUCH_ASSIGN_OR_RETURN(std::shared_ptr<ServerSession> s,
                           sessions_.Get(session));
  if (!running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server not running");
  }
  s->submitted.fetch_add(1, std::memory_order_relaxed);
  total_submitted_.fetch_add(1, std::memory_order_relaxed);
  TouchTask task;
  task.session_id = session;
  task.event = event;
  task.release_us = release_us;
  task.deadline_us = deadline_us;
  task.budget_us = budget_us;
  task.droppable = droppable;
  if (trace_ != nullptr) {
    task.quantum_id =
        next_quantum_id_.fetch_add(1, std::memory_order_relaxed);
    trace_->Record(obs::SpanStage::kSubmitted, task.quantum_id, session,
                   budget_us, droppable ? 1 : 0);
  }
  if (droppable) {
    // Admission shed: bound checked and enforced under the scheduler's
    // own lock so concurrent submitters cannot overshoot it.
    const std::int64_t quantum_id = task.quantum_id;
    if (!scheduler_.PushIfUnder(std::move(task),
                                config_.max_session_queue)) {
      s->dropped_quanta.fetch_add(1, std::memory_order_relaxed);
      total_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->Record(
            obs::SpanStage::kShed, quantum_id, session,
            static_cast<std::int64_t>(obs::ShedReason::kAdmission));
      }
      return false;
    }
    return true;
  }
  scheduler_.Push(std::move(task));
  return true;
}

Status TouchServer::Submit(SessionId session, const sim::TouchEvent& event) {
  api::SubmitBatchReq req;
  req.session = session;
  req.paced = false;  // One event: released immediately, due one budget out.
  req.events.push_back(api::ToWire(event));
  return Call(req).status();
}

Status TouchServer::SubmitTrace(SessionId session,
                                const sim::GestureTrace& trace,
                                const TraceSubmitOptions& options) {
  api::SubmitBatchReq req;
  req.session = session;
  req.paced = options.paced;
  req.events.reserve(trace.events.size());
  for (const sim::TouchEvent& event : trace.events) {
    req.events.push_back(api::ToWire(event));
  }
  return Call(req).status();
}

Status TouchServer::Drain() {
  if (!running_) {
    return Status::FailedPrecondition("server not running");
  }
  // Refinement quanta are re-queued by fetch completions, so one WaitIdle
  // is not enough: a settle landing just after it can push new work. Wait
  // out the fetch pipeline as well and converge when a full pass saw both
  // idle with no refinement re-queued in between.
  while (true) {
    scheduler_.WaitIdle();
    const std::int64_t requeues =
        refine_requeues_.load(std::memory_order_acquire);
    shared_->buffer_manager().WaitForFetches();
    if (refine_requeues_.load(std::memory_order_acquire) == requeues &&
        scheduler_.pending() == 0) {
      break;
    }
  }
  return Status::OK();
}

void TouchServer::WorkerLoop() {
  while (auto task = scheduler_.PopRunnable()) {
    const auto session = sessions_.Get(task->session_id);
    if (!session.ok()) {
      // Session closed while its tasks were in flight: purge whatever a
      // racing submit re-queued and release the busy mark.
      scheduler_.DropSession(task->session_id);
      scheduler_.OnTaskDone(task->session_id);
      continue;
    }
    const std::shared_ptr<ServerSession>& s = *session;

    if (task->refine) {
      // Refinement quanta live outside the executed/dropped accounting:
      // the quantum that owed the user an answer already completed (with
      // partial results) and was counted; this one only upgrades
      // fidelity, so it must not perturb idle()/miss/shed bookkeeping.
      ExecuteRefinement(&*task, s);
      scheduler_.OnTaskDone(task->session_id);
      continue;
    }

    const sim::Micros popped = SteadyNowUs();
    // Stage accounting. The invariant this maintains: queue wait (release
    // -> first dispatch) + exec segments (each dispatch -> park/done) +
    // stall segments (each park -> re-dispatch) tile [release, done] with
    // no gaps, so the stage histograms sum to the end-to-end latency.
    if (task->parked_at_us >= 0) {
      task->stall_accum_us += popped - task->parked_at_us;
      task->parked_at_us = -1;
    }
    if (!task->resume && task->droppable &&
        popped > task->deadline_us + config_.drop_slack_us) {
      // Hopelessly late: shed the quantum, coarsen the session. Resume
      // tasks are exempt — their recognizer work already happened; only
      // the parked execution remains and must drain (or be abandoned on
      // fetch failure below).
      s->dropped_quanta.fetch_add(1, std::memory_order_relaxed);
      s->shed_levels.store(
          ClampShed(s->shed_levels.load(std::memory_order_relaxed) + 1,
                    config_.max_shed_levels),
          std::memory_order_relaxed);
      total_dropped_.fetch_add(1, std::memory_order_relaxed);
      if (trace_ != nullptr) {
        trace_->Record(obs::SpanStage::kShed, task->quantum_id,
                       task->session_id,
                       static_cast<std::int64_t>(obs::ShedReason::kLate),
                       popped - task->deadline_us);
      }
      scheduler_.OnTaskDone(task->session_id);
      continue;
    }
    if (task->first_dispatch_us < 0) {
      task->first_dispatch_us = popped;
    }
    if (trace_ != nullptr) {
      trace_->Record(task->resume ? obs::SpanStage::kResumed
                                  : obs::SpanStage::kExecuting,
                     task->quantum_id, task->session_id);
    }

    core::TouchStall stall;
    core::TouchOutcome outcome;
    {
      const std::lock_guard<std::mutex> lock(s->exec_mu());
      // Buffer-pressure bias: while the pool runs near its byte budget,
      // every session sheds one extra level so summaries touch fewer
      // blocks and eviction pressure relaxes. Applied only in the
      // deadline-sacred mode — classic mode keeps bit-stable results.
      const int bias = config_.partial_answers
                           ? buffer_shed_bias_.load(std::memory_order_relaxed)
                           : 0;
      const int shed =
          ClampShed(s->shed_levels.load(std::memory_order_relaxed) + bias,
                    config_.max_shed_levels);
      s->kernel().set_shed_levels(shed);
      if (trace_ != nullptr) {
        s->kernel().set_trace_quantum(task->quantum_id);
      }
      if (task->resume) {
        total_resumed_.fetch_add(1, std::memory_order_relaxed);
        if (s->fetch_failed.exchange(false, std::memory_order_acq_rel)) {
          // The awaited fetch failed past its retries: the blocks will
          // never arrive, so shed the parked gesture work instead of
          // suspending on it forever.
          s->kernel().AbandonPending();
          total_shed_on_fetch_error_.fetch_add(1,
                                               std::memory_order_relaxed);
        }
        outcome = s->kernel().ResumePending(&stall);
      } else {
        outcome = s->kernel().OnTouchAsync(task->event, &stall);
      }
    }
    if (outcome == core::TouchOutcome::kSuspended && config_.partial_answers) {
      // Deadline-sacred path: if the measured fetch latency predicts the
      // park would blow the deadline, answer now from the resident sample
      // level and re-queue refinement quanta instead of parking.
      outcome = TryPartialDispatch(&*task, s, &stall);
    }
    if (outcome == core::TouchOutcome::kSuspended) {
      // Close this exec segment and open a stall segment; the next
      // dispatch of this quantum closes the stall above.
      const sim::Micros parked = SteadyNowUs();
      task->exec_accum_us += parked - popped;
      task->parked_at_us = parked;
      SuspendOnStall(*task, s, std::move(stall));
      continue;  // ParkForFetch released the busy mark; serve others.
    }
    const sim::Micros done = SteadyNowUs();
    task->exec_accum_us += done - popped;

    // Latency is measured against the scheduled arrival: the time a live
    // user at the screen would have waited for this touch's answer.
    const sim::Micros latency = done - task->release_us;
    const bool missed = done > task->deadline_us;
    s->executed.fetch_add(1, std::memory_order_relaxed);
    if (missed) {
      s->deadline_misses.fetch_add(1, std::memory_order_relaxed);
      s->shed_levels.store(
          ClampShed(s->shed_levels.load(std::memory_order_relaxed) + 1,
                    config_.max_shed_levels),
          std::memory_order_relaxed);
    } else {
      // On-time completion: relax shedding one level at a time.
      s->shed_levels.store(
          ClampShed(s->shed_levels.load(std::memory_order_relaxed) - 1,
                    config_.max_shed_levels),
          std::memory_order_relaxed);
    }
    RecordCompletion(*task, latency, missed);
    const std::int64_t n = completions_since_pressure_check_.fetch_add(
        1, std::memory_order_relaxed);
    if ((n & 63) == 0) {
      // Recompute the buffer-pressure shed bias every 64th completion:
      // stats() aggregates across cache shards, too heavy per quantum.
      const std::int64_t budget =
          shared_->buffer_manager().config().budget_bytes;
      const bool pressed =
          budget > 0 &&
          shared_->buffer_manager().stats().resident_bytes * 10 >= budget * 9;
      buffer_shed_bias_.store(pressed ? 1 : 0, std::memory_order_relaxed);
    }
    scheduler_.OnTaskDone(task->session_id);
  }
}

void TouchServer::SuspendOnStall(const TouchTask& task,
                                 const std::shared_ptr<ServerSession>& s,
                                 core::TouchStall stall) {
  DBTOUCH_CHECK(!stall.entries.empty());
  s->suspended_quanta.fetch_add(1, std::memory_order_relaxed);
  total_suspended_.fetch_add(1, std::memory_order_relaxed);
  if (stall.entries.size() > 1) {
    // N cold attributes riding one suspend saved N - 1 round trips over
    // the old one-attribute-per-stall behaviour.
    total_batched_stall_attrs_.fetch_add(
        static_cast<std::int64_t>(stall.entries.size()) - 1,
        std::memory_order_relaxed);
  }
  // Park first: the session must be invisible to PopRunnable before any
  // completion can try to unpark it.
  scheduler_.ParkForFetch(task);

  /// One ticket for the whole stall — every entry's blocks count toward
  /// it, so the last completion across all attributes unparks.
  struct FetchTicket {
    std::atomic<std::int64_t> remaining;
    std::atomic<bool> failed{false};
    explicit FetchTicket(std::int64_t n) : remaining(n) {}
  };
  auto ticket = std::make_shared<FetchTicket>(stall.total_blocks());
  const SessionId id = task.session_id;
  const auto settle = [this, id, s, ticket](const Status& status) {
    if (!status.ok()) {
      // Failed fetches are counted by the queue itself (fetch_stats);
      // here we only remember that the resume must shed.
      ticket->failed.store(true, std::memory_order_relaxed);
    }
    if (ticket->remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      if (ticket->failed.load(std::memory_order_relaxed)) {
        s->fetch_failed.store(true, std::memory_order_release);
      }
      scheduler_.Unpark(id);
    }
  };
  for (const core::TouchStall::Entry& entry : stall.entries) {
    for (const std::int64_t block : entry.blocks) {
      // Tagged with the session id so CloseSession can retract tickets
      // the fetchers have not picked up yet. An entry's blocks are
      // adjacent (one summary band), so the queue coalesces them into a
      // ranged read at pop time.
      const Status started = entry.source->StartFetch(
          block, settle, static_cast<std::uint64_t>(id));
      if (!started.ok()) {
        settle(started);  // Count it down; the resume sheds the work.
      }
    }
  }
}

sim::Micros TouchServer::FetchEwmaUs() const {
  return shared_->buffer_manager().ewma_block_fetch_us();
}

core::TouchOutcome TouchServer::TryPartialDispatch(
    TouchTask* task, const std::shared_ptr<ServerSession>& s,
    core::TouchStall* stall) {
  // Sacrifice fidelity only when the measured tier latency predicts a
  // deadline miss; a fast tier parks classically and still answers on
  // time at full fidelity. Before the first fetch has settled the EWMA is
  // zero and the classic path keeps its exactness.
  const sim::Micros ewma = FetchEwmaUs();
  if (ewma <= 0 || SteadyNowUs() + ewma <= task->deadline_us) {
    return core::TouchOutcome::kSuspended;
  }
  while (true) {
    bool answered = false;
    {
      const std::lock_guard<std::mutex> lock(s->exec_mu());
      answered = s->kernel().AnswerPartialFromResident();
    }
    if (!answered) {
      // The stalled head is not partial-eligible (tap targeting, join
      // input, no resident sample level): park classically on `stall`.
      return core::TouchOutcome::kSuspended;
    }
    s->partial_quanta.fetch_add(1, std::memory_order_relaxed);
    total_partial_.fetch_add(1, std::memory_order_relaxed);
    if (trace_ != nullptr) {
      trace_->Record(obs::SpanStage::kPartial, task->quantum_id,
                     task->session_id);
    }
    StartRefinementFetches(*task, s, std::move(*stall));
    // Drain the rest of the quantum: gestures queued behind the answered
    // head may complete outright or stall in turn (and get their own
    // partial answer on the next lap).
    core::TouchStall next;
    core::TouchOutcome outcome;
    {
      const std::lock_guard<std::mutex> lock(s->exec_mu());
      outcome = s->kernel().ResumePending(&next);
    }
    if (outcome == core::TouchOutcome::kCompleted) {
      return outcome;
    }
    *stall = std::move(next);
  }
}

void TouchServer::StartRefinementFetches(
    const TouchTask& task, const std::shared_ptr<ServerSession>& s,
    core::TouchStall stall) {
  DBTOUCH_CHECK(!stall.entries.empty());
  const SessionId id = task.session_id;
  // Refinement latency is measured from the touch the user actually made,
  // carried across re-queues and re-fetches.
  const sim::Micros origin_release =
      task.refine ? task.origin_release_us : task.release_us;
  const sim::Micros base_deadline = task.deadline_us;
  s->refine_fetches_inflight.fetch_add(stall.total_blocks(),
                                       std::memory_order_acq_rel);
  const auto settle = [this, id, s, origin_release,
                       base_deadline](const Status& status) {
    s->refine_fetches_inflight.fetch_sub(1, std::memory_order_acq_rel);
    if (!status.ok()) {
      // Permanent failure: the next refine quantum abandons instead of
      // re-fetching a block that will never arrive.
      s->refine_fetch_failed.store(true, std::memory_order_release);
    }
    if (!running_.load(std::memory_order_acquire)) {
      return;  // Stop() abandons pending refinements.
    }
    // One refinement quantum per landed block: refinement starts as soon
    // as any part of the band is checkable instead of waiting out the
    // whole fetch, and the deadline extends past the original by exactly
    // the measured per-block fetch latency — fidelity waits as long as
    // the tier demonstrably needs, no longer.
    TouchTask refine;
    refine.session_id = id;
    refine.refine = true;
    refine.droppable = false;
    refine.resume = false;
    refine.release_us = SteadyNowUs();
    const sim::Micros ewma = std::max<sim::Micros>(FetchEwmaUs(), 1'000);
    refine.deadline_us = std::max(base_deadline, refine.release_us) + ewma;
    refine.budget_us = refine.deadline_us - refine.release_us;
    refine.origin_release_us = origin_release;
    if (trace_ != nullptr) {
      refine.quantum_id =
          next_quantum_id_.fetch_add(1, std::memory_order_relaxed);
    }
    refine_requeues_.fetch_add(1, std::memory_order_release);
    // Front of the session queue: the slide's not-yet-released touches
    // sit behind it in the FIFO, and a refinement that waited out the
    // whole gesture would be stale by the time it landed.
    scheduler_.PushFront(std::move(refine));
  };
  for (const core::TouchStall::Entry& entry : stall.entries) {
    for (const std::int64_t block : entry.blocks) {
      const Status started = entry.source->StartFetch(
          block, settle, static_cast<std::uint64_t>(id));
      if (!started.ok()) {
        settle(started);
      }
    }
  }
}

void TouchServer::ExecuteRefinement(TouchTask* task,
                                    const std::shared_ptr<ServerSession>& s) {
  // Drain every refinement whose blocks have landed, not just the head:
  // settles can land out of FIFO order, so the quantum pushed for
  // refinement B may find head A still cold while B is ready right
  // behind it — a single-shot RefineNext would strand B forever.
  while (true) {
    core::TouchStall stall;
    core::RefineOutcome outcome;
    {
      const std::lock_guard<std::mutex> lock(s->exec_mu());
      if (s->refine_fetch_failed.exchange(false,
                                          std::memory_order_acq_rel)) {
        // The refinement's fetch failed past its retries: the partial
        // answer stands as the final one for that touch.
        s->kernel().AbandonRefinement();
        total_refine_shed_.fetch_add(1, std::memory_order_relaxed);
      }
      if (trace_ != nullptr) {
        s->kernel().set_trace_quantum(task->quantum_id);
      }
      outcome = s->kernel().RefineNext(&stall);
    }
    const sim::Micros done = SteadyNowUs();
    if (outcome == core::RefineOutcome::kRefined) {
      s->refined_quanta.fetch_add(1, std::memory_order_relaxed);
      total_refined_.fetch_add(1, std::memory_order_relaxed);
      refine_hist_.Record(done - task->origin_release_us);
      if (trace_ != nullptr) {
        trace_->Record(obs::SpanStage::kRefined, task->quantum_id,
                       task->session_id, done - task->origin_release_us,
                       done > task->deadline_us ? 1 : 0);
      }
      continue;  // The next refinement's blocks may have landed too.
    }
    if (outcome == core::RefineOutcome::kStillCold) {
      // Blocks were evicted (or a re-queue raced an eviction) before this
      // quantum ran. Re-fetch only when no settle is pending — otherwise
      // the pending settle pushes the next refine quantum anyway and
      // re-fetching here would amplify coalesced duplicates.
      if (!stall.entries.empty() &&
          s->refine_fetches_inflight.load(std::memory_order_acquire) == 0) {
        StartRefinementFetches(*task, s, std::move(stall));
      }
    }
    break;  // kIdle: every queued refinement is done.
  }
}

void TouchServer::RecordCompletion(const TouchTask& task,
                                   sim::Micros latency, bool missed) {
  total_executed_.fetch_add(1, std::memory_order_relaxed);
  if (missed) {
    total_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  // Every executed touch is recorded — histograms have no sample cap, so
  // long-run percentiles reflect the whole run, not whichever samples a
  // bounded reservoir happened to keep.
  const sim::Micros queue_wait =
      task.first_dispatch_us - task.release_us;
  queue_wait_hist_.Record(queue_wait);
  exec_hist_.Record(task.exec_accum_us);
  fetch_stall_hist_.Record(task.stall_accum_us);
  e2e_hist_.Record(latency);
  if (trace_ != nullptr) {
    trace_->Record(obs::SpanStage::kCompleted, task.quantum_id,
                   task.session_id, latency, missed ? 1 : 0);
    obs::SlowQuantumExemplar exemplar;
    exemplar.quantum = task.quantum_id;
    exemplar.session = task.session_id;
    exemplar.e2e_us = latency;
    exemplar.queue_wait_us = queue_wait;
    exemplar.exec_us = task.exec_accum_us;
    exemplar.fetch_stall_us = task.stall_accum_us;
    exemplar.missed = missed;
    trace_->NoteCompletion(exemplar);
  }
}

ServerStatsSnapshot TouchServer::stats() const {
  ServerStatsSnapshot snapshot;
  snapshot.sessions_opened = sessions_.opened();
  snapshot.sessions_active = static_cast<std::int64_t>(sessions_.size());
  snapshot.submitted = total_submitted_.load(std::memory_order_relaxed);
  snapshot.executed = total_executed_.load(std::memory_order_relaxed);
  snapshot.dropped_quanta = total_dropped_.load(std::memory_order_relaxed);
  snapshot.deadline_misses = total_misses_.load(std::memory_order_relaxed);
  snapshot.partial_answers = total_partial_.load(std::memory_order_relaxed);
  snapshot.refinements = total_refined_.load(std::memory_order_relaxed);
  snapshot.refinements_shed =
      total_refine_shed_.load(std::memory_order_relaxed);
  snapshot.stages.queue_wait = queue_wait_hist_.Snapshot();
  snapshot.stages.exec = exec_hist_.Snapshot();
  snapshot.stages.fetch_stall = fetch_stall_hist_.Snapshot();
  snapshot.stages.e2e = e2e_hist_.Snapshot();
  snapshot.stages.refine = refine_hist_.Snapshot();
  snapshot.p50_latency_us = snapshot.stages.e2e.Percentile(0.50);
  snapshot.p99_latency_us = snapshot.stages.e2e.Percentile(0.99);
  snapshot.max_latency_us = snapshot.stages.e2e.max;
  {
    const cache::BlockCacheStats buffer = shared_->buffer_manager().stats();
    snapshot.buffer.lookups = buffer.lookups;
    snapshot.buffer.hits = buffer.hits;
    snapshot.buffer.faulted_blocks = buffer.faults;
    snapshot.buffer.evictions = buffer.evictions;
    snapshot.buffer.bypasses = buffer.bypasses;
    snapshot.buffer.resident_bytes = buffer.resident_bytes;
    snapshot.buffer.peak_resident_bytes = buffer.peak_resident_bytes;
    snapshot.buffer.budget_bytes =
        shared_->buffer_manager().config().budget_bytes;
    const storage::MemoryTracker& tracker =
        storage::MemoryTracker::Instance();
    snapshot.buffer.tracked_matrix_bytes = tracker.matrix_bytes();
    snapshot.buffer.tracked_column_bytes = tracker.column_bytes();
  }
  {
    const cache::FetchQueueStats fetch =
        shared_->buffer_manager().fetch_stats();
    snapshot.fetch.suspended_quanta =
        total_suspended_.load(std::memory_order_relaxed);
    snapshot.fetch.resumed_quanta =
        total_resumed_.load(std::memory_order_relaxed);
    snapshot.fetch.demand_fetches = fetch.demand_enqueued;
    snapshot.fetch.prefetch_fetches = fetch.prefetch_enqueued;
    snapshot.fetch.retries =
        fetch.retries + shared_->buffer_manager().sync_fetch_retries();
    snapshot.fetch.fetch_errors = fetch.failures;
    snapshot.fetch.shed_on_fetch_error =
        total_shed_on_fetch_error_.load(std::memory_order_relaxed);
    snapshot.fetch.cancelled_fetches = fetch.cancelled;
    snapshot.fetch.aborted_fetches = fetch.aborted;
    snapshot.fetch.prefetch_ranges = fetch.prefetch_ranges;
    snapshot.fetch.batched_stall_attrs =
        total_batched_stall_attrs_.load(std::memory_order_relaxed);
    snapshot.fetch.ranged_reads =
        fetch.ranged_reads +
        shared_->buffer_manager().sync_ranged_reads();
    snapshot.fetch.ranged_blocks =
        fetch.ranged_blocks +
        shared_->buffer_manager().sync_ranged_blocks();
    snapshot.fetch.bytes_fetched = fetch.bytes_fetched;
    snapshot.fetch.fetch_wall_us = fetch.fetch_wall_us;
    snapshot.fetch.max_fetch_wall_us = fetch.max_fetch_wall_us;
    snapshot.fetch.ewma_block_fetch_us = fetch.ewma_block_fetch_us;
  }
  std::vector<std::int64_t> executed_per_session;
  for (const auto& s : sessions_.Snapshot()) {
    SessionStatsSnapshot per;
    per.submitted = s->submitted.load(std::memory_order_relaxed);
    per.executed = s->executed.load(std::memory_order_relaxed);
    per.dropped_quanta = s->dropped_quanta.load(std::memory_order_relaxed);
    per.deadline_misses =
        s->deadline_misses.load(std::memory_order_relaxed);
    per.suspended_quanta =
        s->suspended_quanta.load(std::memory_order_relaxed);
    per.shed_levels = s->shed_levels.load(std::memory_order_relaxed);
    per.partial_quanta = s->partial_quanta.load(std::memory_order_relaxed);
    per.refined_quanta = s->refined_quanta.load(std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(s->exec_mu());
      const core::KernelStats& k = s->kernel().stats();
      per.touch_events = k.touch_events;
      per.entries_returned = k.entries_returned;
      per.rows_scanned = k.rows_scanned;
    }
    if (per.submitted > 0) {
      executed_per_session.push_back(per.executed);
    }
    snapshot.per_session.emplace(s->id(), per);
  }
  snapshot.fairness = JainFairness(executed_per_session);
  return snapshot;
}

}  // namespace dbtouch::server
