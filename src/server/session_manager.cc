#include "server/session_manager.h"

namespace dbtouch::server {

Result<SessionId> SessionManager::Open(const core::KernelConfig& config) {
  const SessionId id = next_id_.fetch_add(1);
  auto session = std::make_shared<ServerSession>(id, config, shared_);
  const std::lock_guard<std::mutex> lock(mu_);
  sessions_.emplace(id, std::move(session));
  return id;
}

Status SessionManager::Close(SessionId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return Status::OK();
}

Result<std::shared_ptr<ServerSession>> SessionManager::Get(
    SessionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::NotFound("no session " + std::to_string(id));
  }
  return it->second;
}

std::vector<std::shared_ptr<ServerSession>> SessionManager::Snapshot()
    const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<ServerSession>> out;
  out.reserve(sessions_.size());
  for (const auto& [id, session] : sessions_) {
    out.push_back(session);
  }
  return out;
}

std::size_t SessionManager::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

}  // namespace dbtouch::server
