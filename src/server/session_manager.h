// SessionManager: one isolated kernel per connected client, all sharing
// one read-only SharedState (catalog, sample hierarchies, zone maps).
//
// Everything a user can perturb — view hierarchy, operator state, result
// stream, SessionTracker, virtual clock, gesture recognizer — lives in the
// session's own core::Kernel, so cross-session leakage is impossible by
// construction: two sessions only ever share immutable data artefacts.

#ifndef DBTOUCH_SERVER_SESSION_MANAGER_H_
#define DBTOUCH_SERVER_SESSION_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "core/kernel.h"
#include "core/shared_state.h"
#include "server/server_stats.h"

namespace dbtouch::server {

/// One connected client. Workers execute this session's touches strictly
/// serially (the scheduler marks the session busy while a task is in
/// flight); `exec_mu` additionally serialises out-of-band access — object
/// setup, stats snapshots, test inspection — against the executing worker.
class ServerSession {
 public:
  ServerSession(SessionId id, const core::KernelConfig& config,
                std::shared_ptr<core::SharedState> shared)
      : id_(id), kernel_(config, std::move(shared)) {}

  SessionId id() const { return id_; }
  core::Kernel& kernel() { return kernel_; }
  std::mutex& exec_mu() { return exec_mu_; }

  /// Scheduler-visible counters. Written by the single worker currently
  /// executing this session, read concurrently by stats snapshots.
  std::atomic<std::int64_t> submitted{0};
  std::atomic<std::int64_t> executed{0};
  std::atomic<std::int64_t> dropped_quanta{0};
  std::atomic<std::int64_t> deadline_misses{0};
  /// Quanta parked on cold block fetches (async read path).
  std::atomic<std::int64_t> suspended_quanta{0};
  /// Current load-shedding depth (extra sample levels dropped).
  std::atomic<int> shed_levels{0};
  /// Set by a fetch completion that failed past its retries; the next
  /// resume abandons the parked gesture work instead of re-suspending on
  /// a block that will never arrive.
  std::atomic<bool> fetch_failed{false};
  /// Partial-answer path: quanta answered coarsely at deadline pressure,
  /// refinement quanta completed, and the refine twin of fetch_failed —
  /// set when a refinement's fetch failed permanently, read by the next
  /// refine quantum to abandon instead of re-fetching forever.
  std::atomic<std::int64_t> partial_quanta{0};
  std::atomic<std::int64_t> refined_quanta{0};
  std::atomic<bool> refine_fetch_failed{false};
  /// Refinement demand fetches not yet settled. A still-cold refine
  /// quantum only re-fetches when this is zero — otherwise a pending
  /// settle will push the next refine quantum anyway.
  std::atomic<std::int64_t> refine_fetches_inflight{0};

 private:
  SessionId id_;
  core::Kernel kernel_;
  std::mutex exec_mu_;
};

class SessionManager {
 public:
  explicit SessionManager(std::shared_ptr<core::SharedState> shared)
      : shared_(std::move(shared)) {}

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Opens a session with its own kernel bound to the shared state.
  Result<SessionId> Open(const core::KernelConfig& config);

  /// Closes a session; its kernel (views, operators, results) is
  /// destroyed once the last in-flight reference drains.
  Status Close(SessionId id);

  Result<std::shared_ptr<ServerSession>> Get(SessionId id) const;

  /// All live sessions, for stats roll-up.
  std::vector<std::shared_ptr<ServerSession>> Snapshot() const;

  std::size_t size() const;
  std::int64_t opened() const { return next_id_.load() - 1; }

  const std::shared_ptr<core::SharedState>& shared() const {
    return shared_;
  }

 private:
  std::shared_ptr<core::SharedState> shared_;
  mutable std::mutex mu_;
  std::map<SessionId, std::shared_ptr<ServerSession>> sessions_;
  std::atomic<std::int64_t> next_id_{1};
};

}  // namespace dbtouch::server

#endif  // DBTOUCH_SERVER_SESSION_MANAGER_H_
