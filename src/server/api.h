// server::api — the versioned request/response surface of the touch
// server.
//
// Every way into the server — the in-process methods examples and
// benches call, and the gateway's binary wire protocol — goes through
// the structs in this header. That makes the API a *contract*: each
// request/response is a plain serialisable struct with fixed-width
// fields, a stable wire error-code enum replaces raw common::Status on
// the boundary, and TouchServer's legacy convenience methods
// (OpenSession, SubmitTrace, ...) are thin wrappers that build the
// matching request struct and forward to TouchServer::Call. The gateway
// is then a pure codec: it decodes a frame into one of these structs,
// calls the same entry point an in-process caller would, and encodes
// the response (src/gateway/wire.h owns the byte layout).
//
// Versioning policy (see src/gateway/README.md for the wire half):
//   - kApiVersion names the request/response *shape* set. Additive
//     evolution (new request types, new trailing fields with defaults)
//     does not bump it; removing or reinterpreting a field does.
//   - WireCode values are append-only: codes are never renumbered or
//     reused, because clients persist and compare them.
//   - Direct struct-taking TouchServer overloads that predate this
//     layer (Submit/SubmitTrace taking sim types, WithSession) are
//     deprecated for non-test use in this release and will be removed
//     one release later; tests keep WithSession as the inspection door.

#ifndef DBTOUCH_SERVER_API_H_
#define DBTOUCH_SERVER_API_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sim/touch_event.h"

namespace dbtouch::server::api {

/// Version of the request/response struct set (and of the wire payload
/// encodings derived from it).
inline constexpr std::uint16_t kApiVersion = 1;

using SessionId = std::int64_t;
using ObjectId = std::int64_t;

// ---- Wire error codes ------------------------------------------------------

/// Stable error space of the server boundary. The first block mirrors
/// common::StatusCode one-to-one (same numeric values, so the mapping
/// table cannot drift silently — api.cc static_asserts the pairing);
/// codes from 64 up are protocol-level conditions that have no
/// in-process Status ancestor. Append-only: never renumber.
enum class WireCode : std::uint16_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kResourceExhausted = 7,
  kDeadlineExceeded = 8,
  kAborted = 9,
  kInternal = 10,
  // -- Protocol-level codes (no StatusCode ancestor). --
  /// Frame carried a protocol version this server does not speak.
  kUnsupportedVersion = 64,
  /// Frame failed structural validation (bad magic, truncated payload,
  /// length over the limit, unknown message type).
  kMalformedFrame = 65,
  /// The connection's write queue overflowed; the server is closing it
  /// rather than buffering unboundedly for a slow reader.
  kBackpressure = 66,
};

std::string_view WireCodeName(WireCode code);

/// Status -> wire mapping. OK maps to kOk; every StatusCode has a wire
/// twin by construction.
WireCode WireCodeFromStatus(const Status& status);

/// Wire -> Status mapping for client-side reconstruction. Protocol-level
/// codes (which have no StatusCode twin) map to the closest canonical
/// code: kUnsupportedVersion/kMalformedFrame -> kInvalidArgument,
/// kBackpressure -> kResourceExhausted.
Status StatusFromWire(WireCode code, std::string message);

// ---- Plain serialisable mirrors of internal types --------------------------

/// touch::RectCm without the touch/ dependency: the api layer speaks
/// only to fixed-width serialisable fields.
struct WireRect {
  double x = 0.0;
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  friend bool operator==(const WireRect&, const WireRect&) = default;
};

/// What a gesture on the object computes — core::ActionConfig flattened
/// to wire-stable scalars (the optional exec::Predicate becomes
/// has_predicate + op/lo/hi).
struct WireAction {
  /// core::ActionKind value (scan/aggregate/summary/filter/group-by).
  std::uint8_t kind = 0;
  /// exec::AggKind value.
  std::uint8_t agg = 0;
  std::int64_t summary_k = 10;
  bool has_predicate = false;
  /// exec::CompareOp value; lo/hi are the predicate constants
  /// ([lo, hi] for between, lo == hi otherwise).
  std::uint8_t predicate_op = 0;
  double predicate_lo = 0.0;
  double predicate_hi = 0.0;
  bool use_zone_map = false;
  std::uint32_t group_key_attribute = 0;
  std::uint32_t group_value_attribute = 0;

  friend bool operator==(const WireAction&, const WireAction&) = default;
};

/// One touch sample as it crosses the wire. Timestamps are
/// gesture-relative micros (the batch carries the pacing epoch).
struct WireTouchEvent {
  std::int64_t timestamp_us = 0;
  std::int32_t finger_id = 0;
  /// sim::TouchPhase value.
  std::uint8_t phase = 0;
  double x_cm = 0.0;
  double y_cm = 0.0;

  friend bool operator==(const WireTouchEvent&,
                         const WireTouchEvent&) = default;
};

WireTouchEvent ToWire(const sim::TouchEvent& event);
sim::TouchEvent FromWire(const WireTouchEvent& event);

// ---- Requests / responses --------------------------------------------------
//
// Each request type has a fixed MessageType tag (src/gateway/wire.h) and
// a response struct. Field order is the wire order.

struct OpenSessionReq {
  friend bool operator==(const OpenSessionReq&,
                         const OpenSessionReq&) = default;
};

struct OpenSessionResp {
  SessionId session = 0;

  friend bool operator==(const OpenSessionResp&,
                         const OpenSessionResp&) = default;
};

struct CloseSessionReq {
  SessionId session = 0;

  friend bool operator==(const CloseSessionReq&,
                         const CloseSessionReq&) = default;
};

struct CloseSessionResp {
  friend bool operator==(const CloseSessionResp&,
                         const CloseSessionResp&) = default;
};

/// Creates a data object in the session. kind 0 = column object (table +
/// column name), kind 1 = fat table object (column ignored).
struct CreateObjectReq {
  SessionId session = 0;
  std::uint8_t kind = 0;
  std::string table;
  std::string column;
  WireRect frame;

  friend bool operator==(const CreateObjectReq&,
                         const CreateObjectReq&) = default;
};

struct CreateObjectResp {
  ObjectId object = 0;

  friend bool operator==(const CreateObjectResp&,
                         const CreateObjectResp&) = default;
};

struct SetActionReq {
  SessionId session = 0;
  ObjectId object = 0;
  WireAction action;

  friend bool operator==(const SetActionReq&, const SetActionReq&) = default;
};

struct SetActionResp {
  friend bool operator==(const SetActionResp&,
                         const SetActionResp&) = default;
};

/// A batch of touch events for one session — the feed. Timestamps are
/// relative to the batch's first event; `paced` releases each event on
/// that timeline (replay at gesture speed), otherwise everything is
/// released immediately (flood). Batching is the unit of wire
/// amortisation: a client sends one frame per display frame, not one
/// per touch sample (the paper's warning about per-touch RPC costs,
/// Section 4).
struct SubmitBatchReq {
  SessionId session = 0;
  bool paced = true;
  std::vector<WireTouchEvent> events;

  friend bool operator==(const SubmitBatchReq&,
                         const SubmitBatchReq&) = default;
};

struct SubmitBatchResp {
  /// Events admitted to the session's queue.
  std::int64_t accepted = 0;
  /// Events rejected at admission (session queue at its bound) — the
  /// protocol's backpressure signal to a flooding client.
  std::int64_t rejected = 0;

  friend bool operator==(const SubmitBatchResp&,
                         const SubmitBatchResp&) = default;
};

struct StatsReq {
  friend bool operator==(const StatsReq&, const StatsReq&) = default;
};

/// Server-wide scalar roll-up: the headline numbers of
/// ServerStatsSnapshot without the histograms and per-session maps
/// (those stay in-process; ToJson serves postmortems).
struct StatsResp {
  std::int64_t sessions_active = 0;
  std::int64_t submitted = 0;
  std::int64_t executed = 0;
  std::int64_t dropped_quanta = 0;
  std::int64_t deadline_misses = 0;
  std::int64_t p50_latency_us = 0;
  std::int64_t p99_latency_us = 0;
  std::int64_t suspended_quanta = 0;
  std::int64_t buffer_hits = 0;
  std::int64_t buffer_lookups = 0;

  /// True once every submitted quantum has executed or been shed — the
  /// poll target wire clients drain against.
  bool idle() const {
    return executed + dropped_quanta >= submitted;
  }

  friend bool operator==(const StatsResp&, const StatsResp&) = default;
};

struct SessionSnapshotReq {
  SessionId session = 0;
  /// Results from the tail of the session's stream to include (0 = only
  /// the count).
  std::int64_t max_results = 0;

  friend bool operator==(const SessionSnapshotReq&,
                         const SessionSnapshotReq&) = default;
};

/// One data object's view state inside a SessionSnapshotResp.
struct ObjectInfo {
  ObjectId object = 0;
  /// touch::ObjectKind value (0 column, 1 table).
  std::uint8_t kind = 0;
  /// touch::Orientation value (0 vertical, 1 horizontal).
  std::uint8_t orientation = 0;
  std::string table;
  /// Bound column index, or -1 for table objects.
  std::int64_t column = -1;
  WireRect frame;
  std::int64_t tuple_count = 0;

  friend bool operator==(const ObjectInfo&, const ObjectInfo&) = default;
};

/// One produced result inside a SessionSnapshotResp tail.
struct ResultInfo {
  ObjectId object = 0;
  /// core::ResultKind value.
  std::uint8_t kind = 0;
  std::int64_t row = 0;
  double value = 0.0;
  bool approximate = false;
  /// Partial-answer protocol: true while this entry is a coarse answer
  /// awaiting refinement; refine_seq counts refinement passes (0 = the
  /// initial answer). Encoded as trailing per-result arrays AFTER the v1
  /// results vector on the wire — old decoders simply stop early and see
  /// the defaults (append-only protocol evolution).
  bool partial = false;
  std::int64_t refine_seq = 0;

  friend bool operator==(const ResultInfo&, const ResultInfo&) = default;
};

/// Typed read-only view of one session: its objects (view state), kernel
/// counters and result stream — the api-layer replacement for the
/// WithSession inspection door (which stays, for tests only).
struct SessionSnapshotResp {
  SessionId session = 0;
  std::vector<ObjectInfo> objects;
  // Kernel counters (core::KernelStats subset).
  std::int64_t touch_events = 0;
  std::int64_t gesture_events = 0;
  std::int64_t entries_returned = 0;
  std::int64_t rows_scanned = 0;
  std::int64_t rows_pruned = 0;
  std::int64_t suspensions = 0;
  std::int64_t fetch_errors = 0;
  // Session scheduling state.
  std::int64_t shed_levels = 0;
  // Result stream: total size plus an optional tail.
  std::int64_t result_count = 0;
  std::vector<ResultInfo> results;
  // Partial-answer kernel counters. Trailing fields on the wire (appended
  // after `results`): absent on old peers, zero-defaulted on decode.
  std::int64_t partial_answers = 0;
  std::int64_t refinements = 0;

  friend bool operator==(const SessionSnapshotResp&,
                         const SessionSnapshotResp&) = default;
};

}  // namespace dbtouch::server::api

#endif  // DBTOUCH_SERVER_API_H_
