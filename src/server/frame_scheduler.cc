#include "server/frame_scheduler.h"

#include <chrono>

namespace dbtouch::server {

sim::Micros SteadyNowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void FrameScheduler::Push(TouchTask task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queues_[task.session_id].push_back(std::move(task));
  }
  cv_.notify_all();
}

void FrameScheduler::PushFront(TouchTask task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    queues_[task.session_id].push_front(std::move(task));
  }
  cv_.notify_all();
}

std::optional<TouchTask> FrameScheduler::PopRunnable() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (shutdown_) {
      return std::nullopt;
    }
    const sim::Micros now = SteadyNowUs();
    std::map<std::int64_t, std::deque<TouchTask>>::iterator best =
        queues_.end();
    sim::Micros next_release = 0;
    bool have_next_release = false;
    for (auto it = queues_.begin(); it != queues_.end();) {
      // Garbage-collect drained queues (Push recreates them on demand) so
      // session churn never grows this scan. Busy sessions keep theirs —
      // their worker is about to call OnTaskDone anyway. Parked sessions
      // always have a head task (the suspended quantum), so they are
      // never collected here.
      if (it->second.empty() && busy_.count(it->first) == 0 &&
          parked_.count(it->first) == 0) {
        it = queues_.erase(it);
        continue;
      }
      if (it->second.empty() || busy_.count(it->first) > 0 ||
          parked_.count(it->first) > 0) {
        ++it;
        continue;
      }
      const TouchTask& head = it->second.front();
      if (head.release_us > now) {
        if (!have_next_release || head.release_us < next_release) {
          next_release = head.release_us;
          have_next_release = true;
        }
      } else if (best == queues_.end() ||
                 head.deadline_us < best->second.front().deadline_us) {
        best = it;
      }
      ++it;
    }
    if (best != queues_.end()) {
      TouchTask task = std::move(best->second.front());
      best->second.pop_front();
      busy_.insert(task.session_id);
      if (trace_ != nullptr) {
        trace_->Record(obs::SpanStage::kDispatched, task.quantum_id,
                       task.session_id, task.resume ? 1 : 0);
      }
      return task;
    }
    if (have_next_release) {
      cv_.wait_for(lock,
                   std::chrono::microseconds(next_release - now + 50));
    } else {
      cv_.wait(lock);
    }
  }
}

void FrameScheduler::OnTaskDone(std::int64_t session_id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    busy_.erase(session_id);
  }
  cv_.notify_all();
}

void FrameScheduler::ParkForFetch(TouchTask task) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::int64_t session = task.session_id;
    task.resume = true;
    if (trace_ != nullptr) {
      trace_->Record(obs::SpanStage::kParked, task.quantum_id, session);
    }
    queues_[session].push_front(std::move(task));
    parked_.insert(session);
    busy_.erase(session);
  }
  // The freed worker should look for other sessions' work right away.
  cv_.notify_all();
}

void FrameScheduler::Unpark(std::int64_t session_id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (parked_.erase(session_id) == 0) {
      return;
    }
    if (trace_ != nullptr) {
      // The parked quantum sits at the head of its session queue.
      const auto it = queues_.find(session_id);
      const std::int64_t quantum =
          it != queues_.end() && !it->second.empty()
              ? it->second.front().quantum_id
              : 0;
      trace_->Record(obs::SpanStage::kUnparked, quantum, session_id);
    }
  }
  cv_.notify_all();
}

std::size_t FrameScheduler::parked() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return parked_.size();
}

std::size_t FrameScheduler::DropSession(std::int64_t session_id) {
  std::size_t dropped = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = queues_.find(session_id);
    if (it != queues_.end()) {
      dropped = it->second.size();
      queues_.erase(it);
    }
    parked_.erase(session_id);
  }
  cv_.notify_all();
  return dropped;
}

std::size_t FrameScheduler::PendingOf(std::int64_t session_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = queues_.find(session_id);
  return it == queues_.end() ? 0 : it->second.size();
}

std::size_t FrameScheduler::pending() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [id, queue] : queues_) {
    total += queue.size();
  }
  return total;
}

bool FrameScheduler::IdleLocked() const {
  if (!busy_.empty()) {
    return false;
  }
  for (const auto& [id, queue] : queues_) {
    if (!queue.empty()) {
      return false;
    }
  }
  return true;
}

void FrameScheduler::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return shutdown_ || IdleLocked(); });
}

void FrameScheduler::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
}

void FrameScheduler::Restart() {
  const std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = false;
  queues_.clear();
  busy_.clear();
  parked_.clear();
}

bool FrameScheduler::PushIfUnder(TouchTask task, std::size_t bound) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    std::deque<TouchTask>& queue = queues_[task.session_id];
    if (queue.size() >= bound) {
      return false;
    }
    queue.push_back(std::move(task));
  }
  cv_.notify_all();
  return true;
}

}  // namespace dbtouch::server
