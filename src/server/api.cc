#include "server/api.h"

namespace dbtouch::server::api {

// The first WireCode block mirrors StatusCode numerically so the mapping
// below is the identity; pin the pairing so neither enum can drift
// without this file noticing.
static_assert(static_cast<int>(WireCode::kOk) ==
              static_cast<int>(StatusCode::kOk));
static_assert(static_cast<int>(WireCode::kInvalidArgument) ==
              static_cast<int>(StatusCode::kInvalidArgument));
static_assert(static_cast<int>(WireCode::kNotFound) ==
              static_cast<int>(StatusCode::kNotFound));
static_assert(static_cast<int>(WireCode::kAlreadyExists) ==
              static_cast<int>(StatusCode::kAlreadyExists));
static_assert(static_cast<int>(WireCode::kOutOfRange) ==
              static_cast<int>(StatusCode::kOutOfRange));
static_assert(static_cast<int>(WireCode::kFailedPrecondition) ==
              static_cast<int>(StatusCode::kFailedPrecondition));
static_assert(static_cast<int>(WireCode::kUnimplemented) ==
              static_cast<int>(StatusCode::kUnimplemented));
static_assert(static_cast<int>(WireCode::kResourceExhausted) ==
              static_cast<int>(StatusCode::kResourceExhausted));
static_assert(static_cast<int>(WireCode::kDeadlineExceeded) ==
              static_cast<int>(StatusCode::kDeadlineExceeded));
static_assert(static_cast<int>(WireCode::kAborted) ==
              static_cast<int>(StatusCode::kAborted));
static_assert(static_cast<int>(WireCode::kInternal) ==
              static_cast<int>(StatusCode::kInternal));

std::string_view WireCodeName(WireCode code) {
  switch (code) {
    case WireCode::kOk:
      return "Ok";
    case WireCode::kInvalidArgument:
      return "InvalidArgument";
    case WireCode::kNotFound:
      return "NotFound";
    case WireCode::kAlreadyExists:
      return "AlreadyExists";
    case WireCode::kOutOfRange:
      return "OutOfRange";
    case WireCode::kFailedPrecondition:
      return "FailedPrecondition";
    case WireCode::kUnimplemented:
      return "Unimplemented";
    case WireCode::kResourceExhausted:
      return "ResourceExhausted";
    case WireCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireCode::kAborted:
      return "Aborted";
    case WireCode::kInternal:
      return "Internal";
    case WireCode::kUnsupportedVersion:
      return "UnsupportedVersion";
    case WireCode::kMalformedFrame:
      return "MalformedFrame";
    case WireCode::kBackpressure:
      return "Backpressure";
  }
  return "Unknown";
}

WireCode WireCodeFromStatus(const Status& status) {
  return static_cast<WireCode>(status.code());
}

Status StatusFromWire(WireCode code, std::string message) {
  switch (code) {
    case WireCode::kUnsupportedVersion:
    case WireCode::kMalformedFrame:
      return Status(StatusCode::kInvalidArgument, std::move(message));
    case WireCode::kBackpressure:
      return Status(StatusCode::kResourceExhausted, std::move(message));
    default:
      return Status(static_cast<StatusCode>(code), std::move(message));
  }
}

WireTouchEvent ToWire(const sim::TouchEvent& event) {
  WireTouchEvent wire;
  wire.timestamp_us = event.timestamp_us;
  wire.finger_id = event.finger_id;
  wire.phase = static_cast<std::uint8_t>(event.phase);
  wire.x_cm = event.position.x;
  wire.y_cm = event.position.y;
  return wire;
}

sim::TouchEvent FromWire(const WireTouchEvent& event) {
  sim::TouchEvent out;
  out.timestamp_us = event.timestamp_us;
  out.finger_id = event.finger_id;
  out.phase = static_cast<sim::TouchPhase>(event.phase);
  out.position = sim::PointCm{event.x_cm, event.y_cm};
  return out;
}

}  // namespace dbtouch::server::api
