// Prefetcher over a simulated slow medium. dbTouch's base data may live on
// flash or a remote server; the prefetcher turns predicted touch ranges
// into asynchronous block fetches so the data is resident when the finger
// arrives, and accounts for the stalls when it is not.

#ifndef DBTOUCH_PREFETCH_PREFETCHER_H_
#define DBTOUCH_PREFETCH_PREFETCHER_H_

#include <cstdint>
#include <unordered_map>

#include "prefetch/extrapolator.h"
#include "sim/virtual_clock.h"
#include "storage/types.h"

namespace dbtouch::prefetch {

/// Models block storage with a fixed fetch latency. A block is resident
/// once its fetch completes (in virtual time). Fetches are issued
/// asynchronously and many may be in flight.
class SimulatedBlockStore {
 public:
  SimulatedBlockStore(std::int64_t rows_per_block, sim::Micros fetch_latency)
      : rows_per_block_(rows_per_block), fetch_latency_(fetch_latency) {}

  std::int64_t rows_per_block() const { return rows_per_block_; }
  sim::Micros fetch_latency() const { return fetch_latency_; }

  std::int64_t BlockOf(storage::RowId row) const {
    return row / rows_per_block_;
  }

  /// Issues a fetch at `now` unless already resident/in flight. Returns
  /// the completion time of the (possibly pre-existing) fetch.
  sim::Micros Fetch(std::int64_t block, sim::Micros now);

  /// True when the block's fetch has completed by `now`.
  bool IsResident(std::int64_t block, sim::Micros now) const;

  /// Completion time if fetched/fetching, -1 otherwise.
  sim::Micros CompletionTime(std::int64_t block) const;

  std::int64_t fetches_issued() const { return fetches_issued_; }

 private:
  std::int64_t rows_per_block_;
  sim::Micros fetch_latency_;
  std::unordered_map<std::int64_t, sim::Micros> completion_;
  std::int64_t fetches_issued_ = 0;
};

struct PrefetcherStats {
  std::int64_t touches = 0;
  std::int64_t hits = 0;           // Row resident on arrival.
  std::int64_t stalls = 0;         // Row not resident: user-visible wait.
  sim::Micros stall_us = 0;        // Total modelled wait.
  std::int64_t blocks_prefetched = 0;
};

/// Drives a SimulatedBlockStore from slide observations: every touch
/// updates the extrapolator, prefetches the predicted range, and accounts
/// a stall if the touched row itself was not yet resident.
class Prefetcher {
 public:
  struct Config {
    /// Look-ahead horizon (s). Should exceed the fetch latency or the
    /// prefetch cannot win.
    double horizon_s = 0.5;
    bool enabled = true;
  };

  Prefetcher(SimulatedBlockStore* store, const Config& config)
      : store_(store), config_(config) {}

  /// Processes the touch of `row` at `now` over a column of `n` rows.
  /// Returns the stall (us) the user experienced for this touch: 0 on a
  /// hit, the remaining fetch wait on a miss (the demand fetch is issued
  /// immediately).
  sim::Micros OnTouch(sim::Micros now, storage::RowId row, std::int64_t n);

  const PrefetcherStats& stats() const { return stats_; }
  const GestureExtrapolator& extrapolator() const { return extrapolator_; }

 private:
  SimulatedBlockStore* store_;  // Not owned.
  Config config_;
  GestureExtrapolator extrapolator_;
  PrefetcherStats stats_;
};

}  // namespace dbtouch::prefetch

#endif  // DBTOUCH_PREFETCH_PREFETCHER_H_
