// Gesture extrapolation: "dbTouch can extrapolate the gesture progression
// (speed and direction) and fetch the expected entries such that they are
// readily available if the gesture resumes" (Section 2.6 "Prefetching
// Data").
//
// The extrapolator observes (time, row) pairs from slide steps and
// predicts the row range the finger will touch over a look-ahead horizon.

#ifndef DBTOUCH_PREFETCH_EXTRAPOLATOR_H_
#define DBTOUCH_PREFETCH_EXTRAPOLATOR_H_

#include <cstdint>

#include "sim/virtual_clock.h"
#include "storage/types.h"

namespace dbtouch::prefetch {

struct ExtrapolatorConfig {
  /// EWMA weight of the newest velocity sample.
  double smoothing = 0.3;
  /// Gap (s) after which the gesture is considered paused; velocity decays
  /// rather than projecting stale movement forward.
  double pause_after_s = 0.25;
};

struct RowRange {
  storage::RowId first = 0;  // inclusive
  storage::RowId last = 0;   // inclusive

  bool empty() const { return last < first; }
  std::int64_t size() const { return empty() ? 0 : last - first + 1; }
};

class GestureExtrapolator {
 public:
  explicit GestureExtrapolator(const ExtrapolatorConfig& config = {});

  /// Feeds the row just touched at `now`.
  void Observe(sim::Micros now, storage::RowId row);

  /// Feeds the cache's claimed-before-eviction score for this object's
  /// warm-ups: the fraction of staged prefetches a pin claimed before the
  /// staging cap dropped them (1.0 = every warm-up paid off). Smoothed
  /// with the same EWMA weight as the velocity.
  void ObserveClaimRate(double rate);

  /// Horizon multiplier derived from the claim rate, in [0.5, 2.0]: a
  /// fully claimed warm-up stream doubles the look-ahead, one that mostly
  /// dies unclaimed halves it. 1.0 before any feedback.
  double horizon_scale() const;

  /// Smoothed velocity in rows/second; signed (negative = sliding towards
  /// smaller row ids).
  double velocity_rows_per_s() const { return velocity_; }

  /// True when no movement has been observed for pause_after_s.
  bool IsPaused(sim::Micros now) const;

  /// Predicted touch range over the next `horizon_s` seconds from the last
  /// observed row, clamped to [0, n). During a pause the prediction is the
  /// neighbourhood of the current row (the user is inspecting; resumption
  /// direction is unknown, so prefetch symmetrically).
  RowRange PredictRange(sim::Micros now, double horizon_s,
                        std::int64_t n) const;

  void Reset();

 private:
  ExtrapolatorConfig config_;
  bool has_observation_ = false;
  sim::Micros last_time_ = 0;
  storage::RowId last_row_ = 0;
  double velocity_ = 0.0;
  bool has_claim_rate_ = false;
  double claim_rate_ = 1.0;
};

}  // namespace dbtouch::prefetch

#endif  // DBTOUCH_PREFETCH_EXTRAPOLATOR_H_
