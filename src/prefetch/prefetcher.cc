#include "prefetch/prefetcher.h"

#include <algorithm>

#include "common/macros.h"

namespace dbtouch::prefetch {

sim::Micros SimulatedBlockStore::Fetch(std::int64_t block, sim::Micros now) {
  const auto it = completion_.find(block);
  if (it != completion_.end()) {
    return it->second;  // Resident or already in flight.
  }
  const sim::Micros done = now + fetch_latency_;
  completion_.emplace(block, done);
  ++fetches_issued_;
  return done;
}

bool SimulatedBlockStore::IsResident(std::int64_t block,
                                     sim::Micros now) const {
  const auto it = completion_.find(block);
  return it != completion_.end() && it->second <= now;
}

sim::Micros SimulatedBlockStore::CompletionTime(std::int64_t block) const {
  const auto it = completion_.find(block);
  return it == completion_.end() ? -1 : it->second;
}

sim::Micros Prefetcher::OnTouch(sim::Micros now, storage::RowId row,
                                std::int64_t n) {
  DBTOUCH_CHECK(store_ != nullptr);
  ++stats_.touches;

  // Account the demand access first.
  const std::int64_t block = store_->BlockOf(row);
  sim::Micros stall = 0;
  if (store_->IsResident(block, now)) {
    ++stats_.hits;
  } else {
    const sim::Micros done = store_->Fetch(block, now);
    stall = std::max<sim::Micros>(done - now, 0);
    ++stats_.stalls;
    stats_.stall_us += stall;
  }

  // Then extend the predicted path.
  extrapolator_.Observe(now, row);
  if (config_.enabled) {
    const RowRange range =
        extrapolator_.PredictRange(now, config_.horizon_s, n);
    if (!range.empty()) {
      const std::int64_t first_block = store_->BlockOf(range.first);
      const std::int64_t last_block = store_->BlockOf(range.last);
      for (std::int64_t b = first_block; b <= last_block; ++b) {
        if (store_->CompletionTime(b) < 0) {
          store_->Fetch(b, now);
          ++stats_.blocks_prefetched;
        }
      }
    }
  }
  return stall;
}

}  // namespace dbtouch::prefetch
