#include "prefetch/extrapolator.h"

#include <algorithm>
#include <cmath>

namespace dbtouch::prefetch {

GestureExtrapolator::GestureExtrapolator(const ExtrapolatorConfig& config)
    : config_(config) {}

void GestureExtrapolator::Observe(sim::Micros now, storage::RowId row) {
  if (!has_observation_) {
    has_observation_ = true;
    last_time_ = now;
    last_row_ = row;
    velocity_ = 0.0;
    return;
  }
  const sim::Micros dt = now - last_time_;
  if (dt > 0) {
    const double inst = static_cast<double>(row - last_row_) /
                        sim::MicrosToSeconds(dt);
    velocity_ = config_.smoothing * inst +
                (1.0 - config_.smoothing) * velocity_;
  }
  last_time_ = now;
  last_row_ = row;
}

void GestureExtrapolator::ObserveClaimRate(double rate) {
  rate = std::clamp(rate, 0.0, 1.0);
  if (!has_claim_rate_) {
    has_claim_rate_ = true;
    claim_rate_ = rate;
    return;
  }
  claim_rate_ = config_.smoothing * rate +
                (1.0 - config_.smoothing) * claim_rate_;
}

double GestureExtrapolator::horizon_scale() const {
  if (!has_claim_rate_) {
    return 1.0;
  }
  // Linear in the claim rate: 0 -> 0.5 (stop outrunning the cache),
  // 1 -> 2.0 (warm-ups all land and get used; reach further).
  return 0.5 + 1.5 * claim_rate_;
}

bool GestureExtrapolator::IsPaused(sim::Micros now) const {
  if (!has_observation_) {
    return true;
  }
  return sim::MicrosToSeconds(now - last_time_) > config_.pause_after_s;
}

RowRange GestureExtrapolator::PredictRange(sim::Micros now, double horizon_s,
                                           std::int64_t n) const {
  RowRange out;
  if (!has_observation_ || n <= 0) {
    out.first = 0;
    out.last = -1;
    return out;
  }
  const auto clamp_row = [n](double r) {
    return std::clamp<storage::RowId>(
        static_cast<storage::RowId>(std::llround(r)), 0, n - 1);
  };
  if (IsPaused(now)) {
    // Unknown resumption direction: symmetric neighbourhood sized by the
    // last known speed (at least a small window).
    const double reach =
        std::max(std::abs(velocity_) * horizon_s / 2.0, 16.0);
    out.first = clamp_row(static_cast<double>(last_row_) - reach);
    out.last = clamp_row(static_cast<double>(last_row_) + reach);
    return out;
  }
  const double target =
      static_cast<double>(last_row_) + velocity_ * horizon_s;
  if (velocity_ >= 0.0) {
    out.first = last_row_;
    out.last = clamp_row(target);
  } else {
    out.first = clamp_row(target);
    out.last = last_row_;
  }
  return out;
}

void GestureExtrapolator::Reset() {
  has_observation_ = false;
  last_time_ = 0;
  last_row_ = 0;
  velocity_ = 0.0;
  // The claim-rate EWMA survives Reset on purpose: it models the cache's
  // capacity to absorb this object's warm-ups, not the gesture in flight.
}

}  // namespace dbtouch::prefetch
