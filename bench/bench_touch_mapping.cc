// ABL-TOUCHMAP — paper Sections 2.4/2.5: the per-touch fixed costs. The
// whole dbTouch premise needs touch->tuple mapping, hit testing and
// gesture recognition to be vanishing fractions of the per-touch budget;
// this bench pins their costs.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "gesture/recognizer.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "touch/data_object_view.h"
#include "touch/touch_mapper.h"
#include "touch/view.h"

namespace {

using dbtouch::gesture::GestureRecognizer;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TouchDevice;
using dbtouch::sim::TraceBuilder;
using dbtouch::touch::DataObjectView;
using dbtouch::touch::MapPositionToRow;
using dbtouch::touch::MapTouch;
using dbtouch::touch::ObjectKind;
using dbtouch::touch::RectCm;
using dbtouch::touch::TuplesPerPosition;
using dbtouch::touch::View;

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-TOUCHMAP", "paper Sections 2.4-2.5, touch-to-tuple mapping",
      "Fixed per-touch costs (Rule of Three mapping, hit testing,\n"
      "recognition) and the touch granularity table for the paper's\n"
      "object sizes.");

  const TouchDevice device;
  std::printf("\nTouch granularity (tuples per touchable position), 10^7 "
              "rows:\n\n");
  dbtouch::bench::Table table({"object_cm", "positions",
                               "tuples_per_touch"});
  for (const double cm : {1.5, 3.0, 6.0, 10.0, 12.0, 24.0}) {
    const std::int64_t positions = device.DistinctPositions(cm);
    table.Row({dbtouch::bench::Fmt(cm, 1),
               dbtouch::bench::Fmt(positions),
               dbtouch::bench::Fmt(
                   TuplesPerPosition(10'000'000, cm,
                                     device.config().points_per_cm),
                   0)});
  }
  std::printf("\nZooming from 1.5cm to 24cm raises addressable positions "
              "16x — the physical\nconstraint that motivates sample-level "
              "storage (Section 2.5).\n\n");
}

void BM_RuleOfThree(benchmark::State& state) {
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapPositionToRow(t, 10.0, 10'000'000));
    t += 0.0123;
    if (t > 10.0) {
      t = 0.0;
    }
  }
}
BENCHMARK(BM_RuleOfThree);

void BM_MapTouchOnTable(benchmark::State& state) {
  DataObjectView object("t", RectCm{0, 0, 8, 10}, ObjectKind::kTable,
                        10'000'000, 8);
  PointCm p{0.1, 0.1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MapTouch(object, p));
    p.x += 0.37;
    p.y += 0.59;
    if (p.x > 8.0) p.x -= 8.0;
    if (p.y > 10.0) p.y -= 10.0;
  }
}
BENCHMARK(BM_MapTouchOnTable);

void BM_HitTestDepth(benchmark::State& state) {
  // A screen with `n` sibling objects: hit test cost is linear in
  // overlapping siblings, constant in data size.
  View root("screen", RectCm{0, 0, 100, 100});
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n; ++i) {
    root.AddChild(std::make_unique<View>(
        "v" + std::to_string(i),
        RectCm{static_cast<double>(i % 10) * 10.0,
               static_cast<double>(i / 10) * 10.0, 9.0, 9.0}));
  }
  PointCm p{55.0, 55.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(root.HitTest(p));
  }
  state.counters["siblings"] = n;
}
BENCHMARK(BM_HitTestDepth)->Arg(4)->Arg(16)->Arg(64);

void BM_RecognizerSlideThroughput(benchmark::State& state) {
  const TouchDevice device;
  TraceBuilder builder(device);
  const auto trace = builder.Slide("s", PointCm{2, 1}, PointCm{2, 11},
                                   MotionProfile::Constant(4.0));
  GestureRecognizer recognizer;
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(recognizer.OnTouch(trace.events[i]));
    i = (i + 1) % trace.events.size();
    if (i == 0) {
      recognizer.Reset();
    }
  }
}
BENCHMARK(BM_RecognizerSlideThroughput);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
