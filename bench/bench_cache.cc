// ABL-CACHE — paper Section 2.6 "Caching Data": "caching can be exploited
// such that dbTouch is ready if the user decides to re-examine a data area
// already seen. dbTouch needs to observe the gesture patterns and adjust
// the caching policy."
//
// The cache under test is the payload-holding BufferManager: blocks of a
// real base table pinned through the gesture-aware BlockCache under a byte
// budget. Two reports:
//
//   1. Policy: plain LRU vs gesture-aware scan-bypass on an exploration
//      session mixing long scans with repeated re-examination.
//   2. Cold vs warm paged scans at cache budgets of 10%, 50% and 100% of
//      the table size — block hit rate and rows/s, plus the warm
//      re-examination of a previously studied region.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/buffer_manager.h"
#include "cache/file_block_provider.h"
#include "common/rng.h"
#include "core/shared_state.h"
#include "storage/datagen.h"
#include "storage/memory_tracker.h"
#include "storage/paged_column.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace {

using dbtouch::cache::BlockCacheStats;
using dbtouch::cache::BufferManager;
using dbtouch::cache::BufferManagerConfig;
using dbtouch::storage::RowId;

constexpr std::int64_t kRowsPerBlock = 4096;  // 32 KiB blocks of int64.
constexpr std::int64_t kTableRows = 1'000'000;
/// Rows for the report sections; --smoke shrinks it so CI can run the
/// whole report as a bit-rot check in seconds.
std::int64_t g_report_rows = kTableRows;

std::shared_ptr<dbtouch::storage::Table> MakeTable(std::int64_t rows) {
  std::vector<dbtouch::storage::Column> cols;
  cols.push_back(dbtouch::storage::GenSequenceInt64("v", rows, 0, 1));
  auto table =
      dbtouch::storage::Table::FromColumns("bench", std::move(cols));
  return *table;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PassResult {
  double hit_rate = 0.0;
  std::int64_t faults = 0;
  std::int64_t rows = 0;
  double rows_per_s = 0.0;
};

/// Runs `fn` (which reads rows through the cursor) as one measured pass,
/// reporting the block hit rate and throughput of just that pass.
template <typename Fn>
PassResult MeasurePass(BufferManager& manager,
                       dbtouch::storage::PagedColumnCursor& cursor, Fn fn) {
  const BlockCacheStats before = manager.stats();
  const double t0 = NowSeconds();
  const std::int64_t rows = fn(cursor);
  const double elapsed = NowSeconds() - t0;
  const BlockCacheStats after = manager.stats();
  PassResult out;
  const std::int64_t lookups = after.lookups - before.lookups;
  out.hit_rate = lookups == 0 ? 0.0
                              : static_cast<double>(after.hits - before.hits) /
                                    static_cast<double>(lookups);
  out.faults = after.faults - before.faults;
  out.rows = rows;
  out.rows_per_s = elapsed > 0.0 ? static_cast<double>(rows) / elapsed : 0.0;
  return out;
}

/// Ping-pong study of the row region [first, last): the re-examination
/// pattern the paper says caching must serve.
std::int64_t Study(dbtouch::storage::PagedColumnCursor& cursor, RowId first,
                   RowId last, int rounds) {
  std::int64_t rows = 0;
  double sink = 0.0;
  for (int i = 0; i < rounds; ++i) {
    for (RowId r = first; r < last; r += 64) {
      sink += cursor.GetAsDouble(r);
      ++rows;
    }
    for (RowId r = last - 1; r >= first; r -= 64) {
      sink += cursor.GetAsDouble(r);
      ++rows;
    }
  }
  benchmark::DoNotOptimize(sink);
  cursor.ReleasePin();
  return rows;
}

std::int64_t SequentialScan(dbtouch::storage::PagedColumnCursor& cursor) {
  double sink = 0.0;
  const std::int64_t n = cursor.row_count();
  for (RowId r = 0; r < n; ++r) {
    sink += cursor.GetAsDouble(r);
  }
  benchmark::DoNotOptimize(sink);
  cursor.ReleasePin();
  return n;
}

void PolicyReport(const std::shared_ptr<dbtouch::storage::Table>& table,
                  dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-CACHE", "paper Section 2.6 'Caching Data'",
      "Hit rate re-examining previously seen regions: plain LRU vs the\n"
      "gesture-aware policy (bypass admission during one-directional\n"
      "scans, resume on reversal/pause) — now with block payloads owned\n"
      "by the BufferManager under a byte budget.");

  std::printf("\n");
  dbtouch::bench::Table report({"budget_blocks", "policy", "restudy_hit",
                                "faults", "evictions"});
  for (const std::int64_t budget_blocks : {32L, 64L, 128L}) {
    for (const bool aware : {false, true}) {
      BufferManagerConfig config;
      config.rows_per_block = kRowsPerBlock;
      config.budget_bytes = budget_blocks * kRowsPerBlock * 8;
      config.gesture_aware = aware;
      config.scan_run_length = 4;
      BufferManager manager(config);
      auto source = *manager.ColumnSource(table, 0);
      dbtouch::storage::PagedColumnCursor cursor(source);

      // Study a region, scan far past it, then return.
      const RowId region = g_report_rows * 3 / 5;
      const RowId width = 8 * kRowsPerBlock;
      Study(cursor, region, region + width, 2);
      manager.OnGesturePause();
      SequentialScan(cursor);
      manager.OnGesturePause();
      const PassResult restudy = MeasurePass(
          manager, cursor, [&](dbtouch::storage::PagedColumnCursor& c) {
            return Study(c, region, region + width, 2);
          });
      const BlockCacheStats stats = manager.stats();
      report.Row({dbtouch::bench::Fmt(budget_blocks),
                  aware ? "gesture-aware" : "plain-LRU",
                  dbtouch::bench::Fmt(restudy.hit_rate, 3),
                  dbtouch::bench::Fmt(stats.faults),
                  dbtouch::bench::Fmt(stats.evictions)});
      if (budget_blocks == 128) {
        perf.Metric(aware ? "restudy_hit_aware" : "restudy_hit_plain",
                    restudy.hit_rate);
      }
    }
  }
  std::printf(
      "\nPlain LRU admits every scan block, so the sweep between visits\n"
      "evicts the studied region whenever the budget is smaller than the\n"
      "table; the gesture-aware policy bypasses the scan and the region\n"
      "survives — the re-study runs at ~100%% hit rate from the cache.\n\n");
}

void ColdWarmReport(const std::shared_ptr<dbtouch::storage::Table>& table,
                    dbtouch::bench::BenchReport& perf) {
  const std::int64_t table_bytes = g_report_rows * 8;
  dbtouch::bench::Banner(
      "ABL-CACHE-PAGED", "cold vs warm paged scans",
      "Block hit rate and rows/s of paged reads at cache budgets of 10%,\n"
      "50% and 100% of table size. 'scan' passes read the whole column\n"
      "sequentially; 'restudy' re-examines an 8-block region studied\n"
      "before the measurement.");

  std::printf("\n");
  dbtouch::bench::Table report(
      {"budget", "pass", "hit_rate", "faults", "Mrows/s"});
  for (const int pct : {10, 50, 100}) {
    BufferManagerConfig config;
    config.rows_per_block = kRowsPerBlock;
    config.budget_bytes = table_bytes * pct / 100;
    config.gesture_aware = false;  // Pure LRU budget behaviour.
    BufferManager manager(config);
    auto source = *manager.ColumnSource(table, 0);
    dbtouch::storage::PagedColumnCursor cursor(source);
    const std::string label = std::to_string(pct) + "%";

    const PassResult cold =
        MeasurePass(manager, cursor, SequentialScan);
    const PassResult warm =
        MeasurePass(manager, cursor, SequentialScan);
    // Study once (cold for the region), then re-examine it warm.
    const RowId region = g_report_rows * 3 / 10;
    const RowId width = 8 * kRowsPerBlock;
    const PassResult study_cold = MeasurePass(
        manager, cursor, [&](dbtouch::storage::PagedColumnCursor& c) {
          return Study(c, region, region + width, 1);
        });
    const PassResult restudy = MeasurePass(
        manager, cursor, [&](dbtouch::storage::PagedColumnCursor& c) {
          return Study(c, region, region + width, 1);
        });

    const auto row = [&](const char* pass, const PassResult& r) {
      report.Row({label, pass, dbtouch::bench::Fmt(r.hit_rate, 3),
                  dbtouch::bench::Fmt(r.faults),
                  dbtouch::bench::Fmt(r.rows_per_s / 1e6, 1)});
    };
    row("scan-cold", cold);
    row("scan-warm", warm);
    row("restudy-cold", study_cold);
    row("restudy-warm", restudy);
    if (pct == 100) {
      perf.Metric("warm_scan_hit_rate", warm.hit_rate);
      perf.Metric("cold_scan_mrows_per_s", cold.rows_per_s / 1e6);
      perf.Metric("warm_scan_mrows_per_s", warm.rows_per_s / 1e6);
      perf.Metric("restudy_warm_hit_rate", restudy.hit_rate);
    }
  }
  std::printf(
      "\nAt 100%% budget the warm scan never faults and runs at memory\n"
      "speed; below it, sequential re-scans get no LRU reuse (the classic\n"
      "flooding pattern) but a studied region smaller than the budget is\n"
      "fully warm on re-examination at every budget.\n\n");
}

/// The disk spill tier: cold summary-band reads against a file-backed
/// column at a 10% budget, per-block faults vs ranged (coalesced) reads.
/// This is the bit-rot guard for the disk path — --smoke runs it — and
/// the acceptance report for batched demand fetches: the ranged mode must
/// issue strictly fewer provider calls than blocks fetched.
void FileTierReport(const std::shared_ptr<dbtouch::storage::Table>& table,
                    dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-CACHE-DISK", "file-backed spill tier + ranged reads",
      "The column spilled to a block file and read back through the pool\n"
      "at a 10% budget. Cold 8-block summary bands are faulted either\n"
      "block-by-block (N preads per band) or via Preload's coalesced\n"
      "ranged reads (1 pread per band).");

  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "dbtouch_bench_spill_XXXXXX")
                         .string();
  const std::string dir = ::mkdtemp(tmpl.data());
  dbtouch::storage::TableSpiller spiller(
      dir, dbtouch::storage::SpillOptions{.rows_per_block = kRowsPerBlock});

  std::printf("\n");
  dbtouch::bench::Table report({"mode", "bands", "blocks_fetched",
                                "provider_calls", "ranged", "MB_from_disk",
                                "ms"});
  constexpr std::int64_t kBandBlocks = 8;
  bool coalesced_ok = false;
  for (const bool ranged : {false, true}) {
    const auto provider = spiller.SpillColumn(table, 0);
    if (!provider.ok()) {
      std::printf("spill failed: %s\n", provider.status().ToString().c_str());
      break;
    }
    BufferManagerConfig config;
    config.rows_per_block = kRowsPerBlock;
    config.budget_bytes = g_report_rows * 8 / 10;
    // The staging pad must hold a whole band, or Preload's coalesced
    // blocks evict each other before the pins claim them.
    config.staged_cap_bytes = 2 * kBandBlocks * kRowsPerBlock * 8;
    BufferManager manager(config);
    auto source = manager.SourceFor("disk.v", 0, *provider);

    const std::int64_t num_blocks = source->num_blocks();
    std::int64_t bands = 0;
    const double t0 = NowSeconds();
    // Non-overlapping cold bands across the whole file.
    for (std::int64_t first = 0; first + kBandBlocks <= num_blocks;
         first += 2 * kBandBlocks, ++bands) {
      if (ranged) {
        // The kernel's blocking probe path: batch the band's misses into
        // ranged reads, then pin (all hits).
        if (!source->Preload(first, first + kBandBlocks - 1).ok()) {
          break;
        }
      }
      for (std::int64_t b = first; b < first + kBandBlocks; ++b) {
        auto pin = source->PinBlock(b, -1);
        if (!pin.ok()) {
          break;
        }
        benchmark::DoNotOptimize(pin->view().GetAsDouble(0));
      }
    }
    const double elapsed_ms = (NowSeconds() - t0) * 1e3;
    report.Row({ranged ? "ranged" : "per-block",
                dbtouch::bench::Fmt(bands),
                dbtouch::bench::Fmt((*provider)->blocks_read()),
                dbtouch::bench::Fmt((*provider)->reads()),
                dbtouch::bench::Fmt((*provider)->ranged_reads()),
                dbtouch::bench::Fmt(
                    static_cast<double>((*provider)->bytes_read()) / 1e6,
                    1),
                dbtouch::bench::Fmt(elapsed_ms, 1)});
    if (ranged) {
      coalesced_ok = (*provider)->ranged_reads() > 0 &&
                     (*provider)->reads() < (*provider)->blocks_read();
      // Provider round trips per block fetched: 1.0 = no coalescing,
      // 1/kBandBlocks = every band rode one ranged read.
      perf.Metric("disk_reads_per_block",
                  (*provider)->blocks_read() > 0
                      ? static_cast<double>((*provider)->reads()) /
                            static_cast<double>((*provider)->blocks_read())
                      : 0.0);
      perf.Metric("disk_mb_read",
                  static_cast<double>((*provider)->bytes_read()) / 1e6);
    }
  }
  std::printf(
      "\ncoalescing %s: ranged mode served each cold band with one\n"
      "provider call instead of one per block.\n\n",
      coalesced_ok ? "OK" : "FAILED");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (!coalesced_ok) {
    // The --smoke CI step must fail when the disk path bit-rots.
    std::exit(1);
  }
}

/// Spill reclamation: the memory-ceiling acceptance report. A table 10x
/// the buffer budget is spilled WITH reclamation through a SharedState;
/// the report shows the MemoryTracker's matrix bytes before/after and the
/// pool's peak residency across a full paged scan + restudy. --smoke runs
/// this as the ABL-CACHE-RECLAIM bit-rot guard: if reclamation stops
/// freeing the matrix, or residency ever crosses the budget, the step
/// exits non-zero and CI fails.
void ReclaimReport(dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-CACHE-RECLAIM", "spilled tables actually leave RAM",
      "SpillTable(reclaim_raw) frees the matrix after a verified spill;\n"
      "every reader pins pool blocks instead. Tracked matrix bytes must\n"
      "drop by the table size and peak pool residency must stay within\n"
      "the byte budget while the whole column is scanned and restudied.");

  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "dbtouch_bench_reclaim_XXXXXX")
                         .string();
  const std::string dir = ::mkdtemp(tmpl.data());

  const std::int64_t rows = g_report_rows;
  const std::int64_t table_bytes = rows * 8;
  dbtouch::cache::BufferManagerConfig buffer;
  buffer.rows_per_block = kRowsPerBlock;
  buffer.budget_bytes = table_bytes / 10;
  auto& tracker = dbtouch::storage::MemoryTracker::Instance();
  const std::int64_t matrix_before = tracker.matrix_bytes();

  auto shared = std::make_shared<dbtouch::core::SharedState>(
      dbtouch::sampling::SampleHierarchyConfig{}, /*force_eager=*/false,
      buffer);
  auto table = MakeTable(rows);
  const std::int64_t loaded = tracker.matrix_bytes() - matrix_before;
  bool ok = shared->RegisterTable(table).ok();
  dbtouch::storage::TableSpiller spiller(
      dir, dbtouch::storage::SpillOptions{.rows_per_block = kRowsPerBlock});
  ok = ok && shared->SpillTable("bench", spiller, /*reclaim_raw=*/true).ok();
  const std::int64_t after_reclaim = tracker.matrix_bytes() - matrix_before;

  // Full scan + ping-pong restudy, all off the spill file.
  double checksum = 0.0;
  const auto source = shared->GetColumnSource("bench", 0);
  ok = ok && source.ok();
  if (source.ok()) {
    dbtouch::storage::PagedColumnCursor cursor(*source);
    for (RowId r = 0; r < rows; ++r) {
      checksum += cursor.GetAsDouble(r);
    }
    Study(cursor, rows / 2, rows / 2 + 4 * kRowsPerBlock, 2);
  }
  benchmark::DoNotOptimize(checksum);
  const dbtouch::cache::BlockCacheStats stats =
      shared->buffer_manager().stats();

  std::printf("\n");
  dbtouch::bench::Table report({"metric", "MB"});
  const auto mb = [](std::int64_t bytes) {
    return dbtouch::bench::Fmt(static_cast<double>(bytes) / 1e6, 2);
  };
  report.Row({"table (matrix loaded)", mb(loaded)});
  report.Row({"matrix after reclaim", mb(after_reclaim)});
  report.Row({"pool budget", mb(buffer.budget_bytes)});
  report.Row({"pool peak resident", mb(stats.peak_resident_bytes)});

  const bool reclaimed_ok = ok && table->raw_released() &&
                            after_reclaim <= loaded / 10 &&
                            stats.peak_resident_bytes <=
                                buffer.budget_bytes;
  perf.Metric("reclaim_matrix_residual_ratio",
              loaded > 0 ? static_cast<double>(after_reclaim) /
                               static_cast<double>(loaded)
                         : 0.0);
  perf.Metric("reclaim_peak_over_budget",
              buffer.budget_bytes > 0
                  ? static_cast<double>(stats.peak_resident_bytes) /
                        static_cast<double>(buffer.budget_bytes)
                  : 0.0);
  std::printf(
      "\nreclamation %s: tracked raw bytes %s the byte budget is the\n"
      "memory ceiling for a table 10x its size.\n\n",
      reclaimed_ok ? "OK" : "FAILED",
      reclaimed_ok ? "released;" : "NOT released or budget breached;");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (!reclaimed_ok) {
    std::exit(1);  // The --smoke CI step must fail on memory-ceiling rot.
  }
}

void BM_PagedScan(benchmark::State& state) {
  static auto table = MakeTable(kTableRows);
  BufferManagerConfig config;
  config.rows_per_block = kRowsPerBlock;
  config.budget_bytes = kTableRows * 8 * state.range(0) / 100;
  config.gesture_aware = false;
  BufferManager manager(config);
  auto source = *manager.ColumnSource(table, 0);
  dbtouch::storage::PagedColumnCursor cursor(source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequentialScan(cursor));
  }
  state.SetItemsProcessed(state.iterations() * kTableRows);
  state.SetLabel("budget=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_PagedScan)->Arg(10)->Arg(50)->Arg(100);

void BM_RawViewScan(benchmark::State& state) {
  static auto table = MakeTable(kTableRows);
  const dbtouch::storage::ColumnView view = table->ColumnViewAt(0);
  for (auto _ : state) {
    double sink = 0.0;
    for (RowId r = 0; r < kTableRows; ++r) {
      sink += view.GetAsDouble(r);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kTableRows);
  state.SetLabel("unpaged baseline");
}
BENCHMARK(BM_RawViewScan);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      g_report_rows = 150'000;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  const auto table = MakeTable(g_report_rows);
  dbtouch::bench::BenchReport perf("cache");
  PolicyReport(table, perf);
  ColdWarmReport(table, perf);
  FileTierReport(table, perf);
  ReclaimReport(perf);
  // Policy/residency metrics are deterministic load shapes (tight 20%
  // gates); rows/s metrics vary with the host and stay informational.
  perf.Gate("restudy_hit_aware", "higher", 0.2);
  perf.Gate("warm_scan_hit_rate", "higher", 0.2);
  perf.Gate("disk_reads_per_block", "lower", 0.2);
  perf.Gate("reclaim_peak_over_budget", "lower", 0.2);
  perf.Write("BENCH_cache.json");
  benchmark::Initialize(&argc, argv);
  if (!smoke) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
