// ABL-CACHE — paper Section 2.6 "Caching Data": "caching can be exploited
// such that dbTouch is ready if the user decides to re-examine a data area
// already seen. dbTouch needs to observe the gesture patterns and adjust
// the caching policy."
//
// The cache under test is the payload-holding BufferManager: blocks of a
// real base table pinned through the gesture-aware BlockCache under a byte
// budget. Two reports:
//
//   1. Policy: plain LRU vs gesture-aware scan-bypass on an exploration
//      session mixing long scans with repeated re-examination.
//   2. Cold vs warm paged scans at cache budgets of 10%, 50% and 100% of
//      the table size — block hit rate and rows/s, plus the warm
//      re-examination of a previously studied region.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "cache/buffer_manager.h"
#include "cache/file_block_provider.h"
#include "common/rng.h"
#include "core/shared_state.h"
#include "exec/aggregate.h"
#include "exec/span_kernels.h"
#include "storage/datagen.h"
#include "storage/memory_tracker.h"
#include "storage/paged_column.h"
#include "storage/spill.h"
#include "storage/table.h"

namespace {

using dbtouch::cache::BlockCacheStats;
using dbtouch::cache::BufferManager;
using dbtouch::cache::BufferManagerConfig;
using dbtouch::storage::RowId;

constexpr std::int64_t kRowsPerBlock = 4096;  // 32 KiB blocks of int64.
constexpr std::int64_t kTableRows = 1'000'000;
/// Rows for the report sections; --smoke shrinks it so CI can run the
/// whole report as a bit-rot check in seconds.
std::int64_t g_report_rows = kTableRows;

std::shared_ptr<dbtouch::storage::Table> MakeTable(std::int64_t rows) {
  std::vector<dbtouch::storage::Column> cols;
  cols.push_back(dbtouch::storage::GenSequenceInt64("v", rows, 0, 1));
  auto table =
      dbtouch::storage::Table::FromColumns("bench", std::move(cols));
  return *table;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct PassResult {
  double hit_rate = 0.0;
  std::int64_t faults = 0;
  std::int64_t rows = 0;
  double rows_per_s = 0.0;
};

/// Runs `fn` (which reads rows through the cursor) as one measured pass,
/// reporting the block hit rate and throughput of just that pass.
template <typename Fn>
PassResult MeasurePass(BufferManager& manager,
                       dbtouch::storage::PagedColumnCursor& cursor, Fn fn) {
  const BlockCacheStats before = manager.stats();
  const double t0 = NowSeconds();
  const std::int64_t rows = fn(cursor);
  const double elapsed = NowSeconds() - t0;
  const BlockCacheStats after = manager.stats();
  PassResult out;
  const std::int64_t lookups = after.lookups - before.lookups;
  out.hit_rate = lookups == 0 ? 0.0
                              : static_cast<double>(after.hits - before.hits) /
                                    static_cast<double>(lookups);
  out.faults = after.faults - before.faults;
  out.rows = rows;
  out.rows_per_s = elapsed > 0.0 ? static_cast<double>(rows) / elapsed : 0.0;
  return out;
}

/// Ping-pong study of the row region [first, last): the re-examination
/// pattern the paper says caching must serve.
std::int64_t Study(dbtouch::storage::PagedColumnCursor& cursor, RowId first,
                   RowId last, int rounds) {
  std::int64_t rows = 0;
  double sink = 0.0;
  for (int i = 0; i < rounds; ++i) {
    for (RowId r = first; r < last; r += 64) {
      sink += cursor.GetAsDouble(r);
      ++rows;
    }
    for (RowId r = last - 1; r >= first; r -= 64) {
      sink += cursor.GetAsDouble(r);
      ++rows;
    }
  }
  benchmark::DoNotOptimize(sink);
  cursor.ReleasePin();
  return rows;
}

std::int64_t SequentialScan(dbtouch::storage::PagedColumnCursor& cursor) {
  double sink = 0.0;
  const std::int64_t n = cursor.row_count();
  for (RowId r = 0; r < n; ++r) {
    sink += cursor.GetAsDouble(r);
  }
  benchmark::DoNotOptimize(sink);
  cursor.ReleasePin();
  return n;
}

void PolicyReport(const std::shared_ptr<dbtouch::storage::Table>& table,
                  dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-CACHE", "paper Section 2.6 'Caching Data'",
      "Hit rate re-examining previously seen regions: plain LRU vs the\n"
      "gesture-aware policy (bypass admission during one-directional\n"
      "scans, resume on reversal/pause) — now with block payloads owned\n"
      "by the BufferManager under a byte budget.");

  std::printf("\n");
  dbtouch::bench::Table report({"budget_blocks", "policy", "restudy_hit",
                                "faults", "evictions"});
  for (const std::int64_t budget_blocks : {32L, 64L, 128L}) {
    for (const bool aware : {false, true}) {
      BufferManagerConfig config;
      config.rows_per_block = kRowsPerBlock;
      config.budget_bytes = budget_blocks * kRowsPerBlock * 8;
      config.gesture_aware = aware;
      config.scan_run_length = 4;
      BufferManager manager(config);
      auto source = *manager.ColumnSource(table, 0);
      dbtouch::storage::PagedColumnCursor cursor(source);

      // Study a region, scan far past it, then return.
      const RowId region = g_report_rows * 3 / 5;
      const RowId width = 8 * kRowsPerBlock;
      Study(cursor, region, region + width, 2);
      manager.OnGesturePause();
      SequentialScan(cursor);
      manager.OnGesturePause();
      const PassResult restudy = MeasurePass(
          manager, cursor, [&](dbtouch::storage::PagedColumnCursor& c) {
            return Study(c, region, region + width, 2);
          });
      const BlockCacheStats stats = manager.stats();
      report.Row({dbtouch::bench::Fmt(budget_blocks),
                  aware ? "gesture-aware" : "plain-LRU",
                  dbtouch::bench::Fmt(restudy.hit_rate, 3),
                  dbtouch::bench::Fmt(stats.faults),
                  dbtouch::bench::Fmt(stats.evictions)});
      if (budget_blocks == 128) {
        perf.Metric(aware ? "restudy_hit_aware" : "restudy_hit_plain",
                    restudy.hit_rate);
      }
    }
  }
  std::printf(
      "\nPlain LRU admits every scan block, so the sweep between visits\n"
      "evicts the studied region whenever the budget is smaller than the\n"
      "table; the gesture-aware policy bypasses the scan and the region\n"
      "survives — the re-study runs at ~100%% hit rate from the cache.\n\n");
}

void ColdWarmReport(const std::shared_ptr<dbtouch::storage::Table>& table,
                    dbtouch::bench::BenchReport& perf) {
  const std::int64_t table_bytes = g_report_rows * 8;
  dbtouch::bench::Banner(
      "ABL-CACHE-PAGED", "cold vs warm paged scans",
      "Block hit rate and rows/s of paged reads at cache budgets of 10%,\n"
      "50% and 100% of table size. 'scan' passes read the whole column\n"
      "sequentially; 'restudy' re-examines an 8-block region studied\n"
      "before the measurement.");

  std::printf("\n");
  dbtouch::bench::Table report(
      {"budget", "pass", "hit_rate", "faults", "Mrows/s"});
  for (const int pct : {10, 50, 100}) {
    BufferManagerConfig config;
    config.rows_per_block = kRowsPerBlock;
    config.budget_bytes = table_bytes * pct / 100;
    config.gesture_aware = false;  // Pure LRU budget behaviour.
    BufferManager manager(config);
    auto source = *manager.ColumnSource(table, 0);
    dbtouch::storage::PagedColumnCursor cursor(source);
    const std::string label = std::to_string(pct) + "%";

    const PassResult cold =
        MeasurePass(manager, cursor, SequentialScan);
    const PassResult warm =
        MeasurePass(manager, cursor, SequentialScan);
    // Study once (cold for the region), then re-examine it warm.
    const RowId region = g_report_rows * 3 / 10;
    const RowId width = 8 * kRowsPerBlock;
    const PassResult study_cold = MeasurePass(
        manager, cursor, [&](dbtouch::storage::PagedColumnCursor& c) {
          return Study(c, region, region + width, 1);
        });
    const PassResult restudy = MeasurePass(
        manager, cursor, [&](dbtouch::storage::PagedColumnCursor& c) {
          return Study(c, region, region + width, 1);
        });

    const auto row = [&](const char* pass, const PassResult& r) {
      report.Row({label, pass, dbtouch::bench::Fmt(r.hit_rate, 3),
                  dbtouch::bench::Fmt(r.faults),
                  dbtouch::bench::Fmt(r.rows_per_s / 1e6, 1)});
    };
    row("scan-cold", cold);
    row("scan-warm", warm);
    row("restudy-cold", study_cold);
    row("restudy-warm", restudy);
    if (pct == 100) {
      perf.Metric("warm_scan_hit_rate", warm.hit_rate);
      perf.Metric("cold_scan_mrows_per_s", cold.rows_per_s / 1e6);
      perf.Metric("warm_scan_mrows_per_s", warm.rows_per_s / 1e6);
      perf.Metric("restudy_warm_hit_rate", restudy.hit_rate);
    }
  }
  std::printf(
      "\nAt 100%% budget the warm scan never faults and runs at memory\n"
      "speed; below it, sequential re-scans get no LRU reuse (the classic\n"
      "flooding pattern) but a studied region smaller than the budget is\n"
      "fully warm on re-examination at every budget.\n\n");
}

/// The disk spill tier: cold summary-band reads against a file-backed
/// column at a 10% budget, per-block faults vs ranged (coalesced) reads.
/// This is the bit-rot guard for the disk path — --smoke runs it — and
/// the acceptance report for batched demand fetches: the ranged mode must
/// issue strictly fewer provider calls than blocks fetched.
void FileTierReport(const std::shared_ptr<dbtouch::storage::Table>& table,
                    dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-CACHE-DISK", "file-backed spill tier + ranged reads",
      "The column spilled to a block file and read back through the pool\n"
      "at a 10% budget. Cold 8-block summary bands are faulted either\n"
      "block-by-block (N preads per band) or via Preload's coalesced\n"
      "ranged reads (1 pread per band).");

  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "dbtouch_bench_spill_XXXXXX")
                         .string();
  const std::string dir = ::mkdtemp(tmpl.data());
  dbtouch::storage::TableSpiller spiller(
      dir, dbtouch::storage::SpillOptions{.rows_per_block = kRowsPerBlock});

  std::printf("\n");
  dbtouch::bench::Table report({"mode", "bands", "blocks_fetched",
                                "provider_calls", "ranged", "MB_from_disk",
                                "ms"});
  constexpr std::int64_t kBandBlocks = 8;
  bool coalesced_ok = false;
  for (const bool ranged : {false, true}) {
    const auto provider = spiller.SpillColumn(table, 0);
    if (!provider.ok()) {
      std::printf("spill failed: %s\n", provider.status().ToString().c_str());
      break;
    }
    BufferManagerConfig config;
    config.rows_per_block = kRowsPerBlock;
    config.budget_bytes = g_report_rows * 8 / 10;
    // The staging pad must hold a whole band, or Preload's coalesced
    // blocks evict each other before the pins claim them.
    config.staged_cap_bytes = 2 * kBandBlocks * kRowsPerBlock * 8;
    BufferManager manager(config);
    auto source = manager.SourceFor("disk.v", 0, *provider);

    const std::int64_t num_blocks = source->num_blocks();
    std::int64_t bands = 0;
    const double t0 = NowSeconds();
    // Non-overlapping cold bands across the whole file.
    for (std::int64_t first = 0; first + kBandBlocks <= num_blocks;
         first += 2 * kBandBlocks, ++bands) {
      if (ranged) {
        // The kernel's blocking probe path: batch the band's misses into
        // ranged reads, then pin (all hits).
        if (!source->Preload(first, first + kBandBlocks - 1).ok()) {
          break;
        }
      }
      for (std::int64_t b = first; b < first + kBandBlocks; ++b) {
        auto pin = source->PinBlock(b, -1);
        if (!pin.ok()) {
          break;
        }
        benchmark::DoNotOptimize(pin->view().GetAsDouble(0));
      }
    }
    const double elapsed_ms = (NowSeconds() - t0) * 1e3;
    report.Row({ranged ? "ranged" : "per-block",
                dbtouch::bench::Fmt(bands),
                dbtouch::bench::Fmt((*provider)->blocks_read()),
                dbtouch::bench::Fmt((*provider)->reads()),
                dbtouch::bench::Fmt((*provider)->ranged_reads()),
                dbtouch::bench::Fmt(
                    static_cast<double>((*provider)->bytes_read()) / 1e6,
                    1),
                dbtouch::bench::Fmt(elapsed_ms, 1)});
    if (ranged) {
      coalesced_ok = (*provider)->ranged_reads() > 0 &&
                     (*provider)->reads() < (*provider)->blocks_read();
      // Provider round trips per block fetched: 1.0 = no coalescing,
      // 1/kBandBlocks = every band rode one ranged read.
      perf.Metric("disk_reads_per_block",
                  (*provider)->blocks_read() > 0
                      ? static_cast<double>((*provider)->reads()) /
                            static_cast<double>((*provider)->blocks_read())
                      : 0.0);
      perf.Metric("disk_mb_read",
                  static_cast<double>((*provider)->bytes_read()) / 1e6);
    }
  }
  std::printf(
      "\ncoalescing %s: ranged mode served each cold band with one\n"
      "provider call instead of one per block.\n\n",
      coalesced_ok ? "OK" : "FAILED");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (!coalesced_ok) {
    // The --smoke CI step must fail when the disk path bit-rots.
    std::exit(1);
  }
}

/// Spill reclamation: the memory-ceiling acceptance report. A table 10x
/// the buffer budget is spilled WITH reclamation through a SharedState;
/// the report shows the MemoryTracker's matrix bytes before/after and the
/// pool's peak residency across a full paged scan + restudy. --smoke runs
/// this as the ABL-CACHE-RECLAIM bit-rot guard: if reclamation stops
/// freeing the matrix, or residency ever crosses the budget, the step
/// exits non-zero and CI fails.
void ReclaimReport(dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-CACHE-RECLAIM", "spilled tables actually leave RAM",
      "SpillTable(reclaim_raw) frees the matrix after a verified spill;\n"
      "every reader pins pool blocks instead. Tracked matrix bytes must\n"
      "drop by the table size and peak pool residency must stay within\n"
      "the byte budget while the whole column is scanned and restudied.");

  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "dbtouch_bench_reclaim_XXXXXX")
                         .string();
  const std::string dir = ::mkdtemp(tmpl.data());

  const std::int64_t rows = g_report_rows;
  const std::int64_t table_bytes = rows * 8;
  dbtouch::cache::BufferManagerConfig buffer;
  buffer.rows_per_block = kRowsPerBlock;
  buffer.budget_bytes = table_bytes / 10;
  auto& tracker = dbtouch::storage::MemoryTracker::Instance();
  const std::int64_t matrix_before = tracker.matrix_bytes();

  auto shared = std::make_shared<dbtouch::core::SharedState>(
      dbtouch::sampling::SampleHierarchyConfig{}, /*force_eager=*/false,
      buffer);
  auto table = MakeTable(rows);
  const std::int64_t loaded = tracker.matrix_bytes() - matrix_before;
  bool ok = shared->RegisterTable(table).ok();
  dbtouch::storage::TableSpiller spiller(
      dir, dbtouch::storage::SpillOptions{.rows_per_block = kRowsPerBlock});
  ok = ok && shared->SpillTable("bench", spiller, /*reclaim_raw=*/true).ok();
  const std::int64_t after_reclaim = tracker.matrix_bytes() - matrix_before;

  // Full scan + ping-pong restudy, all off the spill file.
  double checksum = 0.0;
  const auto source = shared->GetColumnSource("bench", 0);
  ok = ok && source.ok();
  if (source.ok()) {
    dbtouch::storage::PagedColumnCursor cursor(*source);
    for (RowId r = 0; r < rows; ++r) {
      checksum += cursor.GetAsDouble(r);
    }
    Study(cursor, rows / 2, rows / 2 + 4 * kRowsPerBlock, 2);
  }
  benchmark::DoNotOptimize(checksum);
  const dbtouch::cache::BlockCacheStats stats =
      shared->buffer_manager().stats();

  std::printf("\n");
  dbtouch::bench::Table report({"metric", "MB"});
  const auto mb = [](std::int64_t bytes) {
    return dbtouch::bench::Fmt(static_cast<double>(bytes) / 1e6, 2);
  };
  report.Row({"table (matrix loaded)", mb(loaded)});
  report.Row({"matrix after reclaim", mb(after_reclaim)});
  report.Row({"pool budget", mb(buffer.budget_bytes)});
  report.Row({"pool peak resident", mb(stats.peak_resident_bytes)});

  const bool reclaimed_ok = ok && table->raw_released() &&
                            after_reclaim <= loaded / 10 &&
                            stats.peak_resident_bytes <=
                                buffer.budget_bytes;
  perf.Metric("reclaim_matrix_residual_ratio",
              loaded > 0 ? static_cast<double>(after_reclaim) /
                               static_cast<double>(loaded)
                         : 0.0);
  perf.Metric("reclaim_peak_over_budget",
              buffer.budget_bytes > 0
                  ? static_cast<double>(stats.peak_resident_bytes) /
                        static_cast<double>(buffer.budget_bytes)
                  : 0.0);
  std::printf(
      "\nreclamation %s: tracked raw bytes %s the byte budget is the\n"
      "memory ceiling for a table 10x its size.\n\n",
      reclaimed_ok ? "OK" : "FAILED",
      reclaimed_ok ? "released;" : "NOT released or budget breached;");
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  if (!reclaimed_ok) {
    std::exit(1);  // The --smoke CI step must fail on memory-ceiling rot.
  }
}

/// ABL-SIMD: the vectorized-kernel acceptance report. Warm paged scans of
/// one double-wide column, per-row scalar cursor vs whole-span kernels
/// over pinned blocks. The span path must be at least 2x the cursor path
/// (the PR's headline acceptance) — the --smoke CI step exits non-zero
/// when it is not, whatever the host.
void SimdReport(dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-SIMD", "span-vectorized scans over pinned spans",
      "Warm (fully resident) scans of a double column through the pool:\n"
      "the per-row scalar cursor (GetAsDouble per row) vs the span\n"
      "kernels iterating whole pinned minipages (runtime-dispatched\n"
      "AVX2 with a portable fallback). Same answers, bit for bit; the\n"
      "span path must win by >= 2x.");

  // A double column: the AVX2 min/max_pd fast path (int64 has no AVX2
  // min/max and only gets the loop-hoisting win).
  std::vector<dbtouch::storage::Column> cols;
  cols.push_back(dbtouch::storage::GenGaussianDouble(
      "g", g_report_rows, 10.0, 2.0, 29));
  auto table = *dbtouch::storage::Table::FromColumns("simd",
                                                     std::move(cols));
  BufferManagerConfig config;
  config.rows_per_block = kRowsPerBlock;
  config.budget_bytes = g_report_rows * 8;  // 100%: warm comparisons.
  config.gesture_aware = false;
  BufferManager manager(config);
  auto source = *manager.ColumnSource(table, 0);
  dbtouch::storage::PagedColumnCursor cursor(source);
  SequentialScan(cursor);  // Warm every block.

  const std::int64_t rows = source->row_count();
  const std::int64_t num_blocks = source->num_blocks();
  constexpr int kReps = 3;  // Best-of: squeeze out scheduler noise.
  // Under --smoke the table is small; iterate each measured pass until it
  // covers ~2M rows so the timings are milliseconds, not microseconds.
  const std::int64_t iters =
      std::max<std::int64_t>(1, 2'000'000 / std::max<std::int64_t>(rows, 1));

  // Scalar cursor pass: the pre-span per-row path (min/max/count summary
  // shape — the order-independent scan the SIMD tier accelerates).
  double cursor_elapsed = 1e300;
  dbtouch::exec::MinMaxState cursor_state;
  for (int rep = 0; rep < kReps; ++rep) {
    dbtouch::exec::MinMaxState state;
    const double t0 = NowSeconds();
    for (std::int64_t it = 0; it < iters; ++it) {
      for (RowId r = 0; r < rows; ++r) {
        const double v = cursor.GetAsDouble(r);
        ++state.count;
        if (v < state.min) {
          state.min = v;
        }
        if (v > state.max) {
          state.max = v;
        }
      }
    }
    cursor_elapsed = std::min(cursor_elapsed, NowSeconds() - t0);
    cursor_state = state;
    benchmark::DoNotOptimize(state);
  }

  // Span pass: pin each block once, run the vectorized kernel over the
  // whole pinned span (summary.cc's block-at-a-time shape).
  double span_elapsed = 1e300;
  dbtouch::exec::MinMaxState span_state;
  bool span_ok = true;
  for (int rep = 0; rep < kReps; ++rep) {
    dbtouch::exec::MinMaxState state;
    const double t0 = NowSeconds();
    for (std::int64_t it = 0; it < iters; ++it) {
      for (std::int64_t b = 0; b < num_blocks; ++b) {
        auto pin = source->PinBlock(b, -1);
        if (!pin.ok() ||
            !dbtouch::exec::MinMaxSpan(pin->view(), &state)) {
          span_ok = false;
          break;
        }
      }
    }
    span_elapsed = std::min(span_elapsed, NowSeconds() - t0);
    span_state = state;
    benchmark::DoNotOptimize(state);
  }

  const double cursor_mrows =
      static_cast<double>(rows * iters) / cursor_elapsed / 1e6;
  const double span_mrows =
      static_cast<double>(rows * iters) / span_elapsed / 1e6;
  const double speedup =
      cursor_elapsed > 0.0 ? cursor_elapsed / span_elapsed : 0.0;
  const double blocks_per_sec =
      span_elapsed > 0.0
          ? static_cast<double>(num_blocks * iters) / span_elapsed
          : 0.0;
  const dbtouch::exec::SimdLevel level = dbtouch::exec::ActiveSimdLevel();

  std::printf("\n");
  dbtouch::bench::Table report({"path", "Mrows/s", "speedup"});
  report.Row({"scalar cursor", dbtouch::bench::Fmt(cursor_mrows, 1),
              "1.0"});
  report.Row({std::string("span kernels (") +
                  std::string(dbtouch::exec::SimdLevelName(level)) + ")",
              dbtouch::bench::Fmt(span_mrows, 1),
              dbtouch::bench::Fmt(speedup, 1)});

  // Same answers, bit for bit — the parity contract the speed rides on.
  const bool parity = span_ok &&
                      cursor_state.count == span_state.count &&
                      cursor_state.min == span_state.min &&
                      cursor_state.max == span_state.max;
  perf.Metric("simd_speedup", speedup);
  perf.Metric("blocks_per_sec", blocks_per_sec);
  perf.Metric("simd_dispatch",
              static_cast<std::int64_t>(level));  // 0 scalar, 1 avx2.
  const bool simd_ok = parity && speedup >= 2.0;
  std::printf(
      "\nvectorized scan %s: %.1fx over the scalar cursor (>= 2x "
      "required), answers %s.\n\n",
      simd_ok ? "OK" : "FAILED", speedup,
      parity ? "bit-identical" : "DIVERGED");
  if (!simd_ok) {
    std::exit(1);  // The --smoke CI step must fail on SIMD-path rot.
  }
}

/// ABL-PAX: the fat-table fault-economics report. Eight-attribute tuple
/// taps against a budget-bounded pool, column-per-block spill vs the PAX
/// multi-column spill. PAX must cost strictly fewer cold faults per
/// tuple — the --smoke CI step exits non-zero when it does not.
void PaxReport(dbtouch::bench::BenchReport& perf) {
  dbtouch::bench::Banner(
      "ABL-PAX", "multi-column blocks vs column-per-block",
      "A fat table (8 mixed-type attributes) spilled to disk and tapped\n"
      "at random rows; every tap reads the WHOLE tuple. Column-per-block\n"
      "faults one block per attribute; PAX faults one multi-column block\n"
      "for the whole tuple.");

  const std::int64_t rows = std::min<std::int64_t>(g_report_rows, 250'000);
  const auto make_fat = [&] {
    std::vector<dbtouch::storage::Column> cols;
    cols.push_back(dbtouch::storage::GenSequenceInt64("id", rows, 0, 1));
    cols.push_back(
        dbtouch::storage::GenGaussianDouble("g", rows, 10.0, 2.0, 11));
    cols.push_back(
        dbtouch::storage::GenUniformInt32("u", rows, -100, 100, 13));
    cols.push_back(dbtouch::storage::GenZipfInt32("z", rows, 64, 1.1, 17));
    cols.push_back(
        dbtouch::storage::GenSinusoidDouble("s", rows, 5.0, 512.0, 0.1, 19));
    cols.push_back(dbtouch::storage::GenSegmentedDouble(
        "seg", rows, {1.0, 5.0, 2.0}, 0.1, 23));
    cols.push_back(dbtouch::storage::GenSequenceInt64("ts", rows, 1'000, 3));
    cols.push_back(dbtouch::storage::GenCategorical(
        "tag", rows, {"alpha", "beta", "gamma"}, 7));
    return *dbtouch::storage::Table::FromColumns("fat", std::move(cols));
  };

  std::string tmpl = (std::filesystem::temp_directory_path() /
                      "dbtouch_bench_pax_XXXXXX")
                         .string();
  const std::string dir = ::mkdtemp(tmpl.data());
  constexpr std::int64_t kTaps = 2'000;
  constexpr std::size_t kCols = 8;

  std::printf("\n");
  dbtouch::bench::Table report(
      {"layout", "taps", "faults", "faults/tuple", "evictions"});
  double faults_per_tuple[2] = {0.0, 0.0};
  bool ran_ok = true;
  for (const bool pax : {false, true}) {
    dbtouch::cache::BufferManagerConfig buffer;
    buffer.rows_per_block = kRowsPerBlock;
    // A quarter of the fat table resident: taps keep faulting cold
    // blocks instead of settling into a fully warm set.
    buffer.budget_bytes = rows * 52 / 4;
    auto shared = std::make_shared<dbtouch::core::SharedState>(
        dbtouch::sampling::SampleHierarchyConfig{}, /*force_eager=*/false,
        buffer);
    auto table = make_fat();
    bool ok = shared->RegisterTable(table).ok();
    dbtouch::storage::TableSpiller spiller(
        dir,
        dbtouch::storage::SpillOptions{.rows_per_block = kRowsPerBlock});
    ok = ok && (pax ? shared->SpillTablePax("fat", spiller,
                                            /*reclaim_raw=*/true)
                    : shared->SpillTable("fat", spiller,
                                         /*reclaim_raw=*/true))
                   .ok();

    std::vector<std::shared_ptr<dbtouch::storage::PagedColumnSource>>
        sources;
    for (std::size_t c = 0; ok && c < kCols; ++c) {
      auto source = shared->GetColumnSource("fat", c);
      ok = ok && source.ok();
      if (source.ok()) {
        sources.push_back(*source);
      }
    }
    if (!ok) {
      std::printf("fat-table spill failed (pax=%d)\n", pax ? 1 : 0);
      ran_ok = false;
      break;
    }

    const std::int64_t faults_before =
        shared->buffer_manager().stats().faults;
    dbtouch::Rng rng(0xfa7);
    double sink = 0.0;
    for (std::int64_t t = 0; t < kTaps; ++t) {
      const RowId row = static_cast<RowId>(
          rng.NextBounded(static_cast<std::uint64_t>(rows)));
      const std::int64_t block = row / kRowsPerBlock;
      for (const auto& source : sources) {
        auto pin = source->PinBlock(block, row);
        if (!pin.ok()) {
          ran_ok = false;
          break;
        }
        sink += pin->view().GetAsDouble(row - block * kRowsPerBlock);
      }
    }
    benchmark::DoNotOptimize(sink);
    const dbtouch::cache::BlockCacheStats stats =
        shared->buffer_manager().stats();
    const std::int64_t faults = stats.faults - faults_before;
    faults_per_tuple[pax ? 1 : 0] =
        static_cast<double>(faults) / static_cast<double>(kTaps);
    report.Row({pax ? "pax" : "column-per-block",
                dbtouch::bench::Fmt(kTaps), dbtouch::bench::Fmt(faults),
                dbtouch::bench::Fmt(faults_per_tuple[pax ? 1 : 0], 3),
                dbtouch::bench::Fmt(stats.evictions)});
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  perf.Metric("faults_per_tuple", faults_per_tuple[1]);
  perf.Metric("faults_per_tuple_col", faults_per_tuple[0]);
  const bool pax_ok =
      ran_ok && faults_per_tuple[1] < faults_per_tuple[0];
  std::printf(
      "\nPAX economics %s: %.3f faults/tuple vs %.3f column-per-block "
      "(strictly fewer required).\n\n",
      pax_ok ? "OK" : "FAILED", faults_per_tuple[1], faults_per_tuple[0]);
  if (!pax_ok) {
    std::exit(1);  // The --smoke CI step must fail on fat-table rot.
  }
}

void BM_PagedScan(benchmark::State& state) {
  static auto table = MakeTable(kTableRows);
  BufferManagerConfig config;
  config.rows_per_block = kRowsPerBlock;
  config.budget_bytes = kTableRows * 8 * state.range(0) / 100;
  config.gesture_aware = false;
  BufferManager manager(config);
  auto source = *manager.ColumnSource(table, 0);
  dbtouch::storage::PagedColumnCursor cursor(source);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequentialScan(cursor));
  }
  state.SetItemsProcessed(state.iterations() * kTableRows);
  state.SetLabel("budget=" + std::to_string(state.range(0)) + "%");
}
BENCHMARK(BM_PagedScan)->Arg(10)->Arg(50)->Arg(100);

void BM_RawViewScan(benchmark::State& state) {
  static auto table = MakeTable(kTableRows);
  const dbtouch::storage::ColumnView view = table->ColumnViewAt(0);
  for (auto _ : state) {
    double sink = 0.0;
    for (RowId r = 0; r < kTableRows; ++r) {
      sink += view.GetAsDouble(r);
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * kTableRows);
  state.SetLabel("unpaged baseline");
}
BENCHMARK(BM_RawViewScan);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      g_report_rows = 150'000;
      for (int j = i; j + 1 < argc; ++j) {
        argv[j] = argv[j + 1];
      }
      --argc;
      break;
    }
  }
  const auto table = MakeTable(g_report_rows);
  dbtouch::bench::BenchReport perf("cache");
  PolicyReport(table, perf);
  ColdWarmReport(table, perf);
  FileTierReport(table, perf);
  ReclaimReport(perf);
  SimdReport(perf);
  PaxReport(perf);
  // Policy/residency metrics are deterministic load shapes (tight 20%
  // gates); rows/s metrics vary with the host and stay informational.
  perf.Gate("restudy_hit_aware", "higher", 0.2);
  perf.Gate("warm_scan_hit_rate", "higher", 0.2);
  perf.Gate("disk_reads_per_block", "lower", 0.2);
  perf.Gate("reclaim_peak_over_budget", "lower", 0.2);
  // faults_per_tuple is a deterministic load shape (seeded taps, LRU).
  // simd_speedup is a same-host ratio — both sides scale with the
  // machine, so it gates with a looser band; the hard >= 2x floor lives
  // in SimdReport itself.
  perf.Gate("faults_per_tuple", "lower", 0.2);
  perf.Gate("simd_speedup", "higher", 0.5);
  perf.Write("BENCH_cache.json");
  benchmark::Initialize(&argc, argv);
  if (!smoke) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
