// ABL-CACHE — paper Section 2.6 "Caching Data": "caching can be exploited
// such that dbTouch is ready if the user decides to re-examine a data area
// already seen. dbTouch needs to observe the gesture patterns and adjust
// the caching policy."
//
// Workload: exploration sessions mixing long scans with repeated
// re-examination of small regions. Policies: no cache, plain LRU, and the
// gesture-aware policy (scan-bypass admission).

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "cache/block_cache.h"
#include "common/rng.h"

namespace {

using dbtouch::cache::BlockCache;
using dbtouch::storage::RowId;

constexpr std::int64_t kRowsPerBlock = 4096;

struct Access {
  RowId row;
  bool pause_before = false;
};

/// Exploration session: scan -> study region A -> scan -> re-study A ->
/// study region B.
std::vector<Access> MakeWorkload() {
  std::vector<Access> out;
  const auto scan = [&](RowId from, RowId to) {
    for (RowId r = from; r < to; r += kRowsPerBlock / 2) {
      out.push_back({r});
    }
  };
  const auto study = [&](RowId center, int rounds) {
    out.push_back({center, /*pause_before=*/true});
    for (int i = 0; i < rounds; ++i) {
      for (RowId r = center - 4 * kRowsPerBlock; r < center + 4 * kRowsPerBlock;
           r += kRowsPerBlock / 2) {
        out.push_back({r});
      }
      for (RowId r = center + 4 * kRowsPerBlock;
           r > center - 4 * kRowsPerBlock; r -= kRowsPerBlock / 2) {
        out.push_back({r});
      }
    }
  };
  scan(0, 2'000'000);
  study(3'000'000, 4);
  scan(4'000'000, 6'000'000);
  study(3'000'000, 4);  // Re-examination: the cacheable opportunity.
  study(7'000'000, 2);
  return out;
}

struct RunResult {
  double hit_rate = 0.0;
  std::int64_t admissions = 0;
  std::int64_t evictions = 0;
};

RunResult Run(bool gesture_aware, std::int64_t capacity) {
  BlockCache::Config config;
  config.capacity_blocks = capacity;
  config.gesture_aware = gesture_aware;
  BlockCache cache(config);
  for (const Access& a : MakeWorkload()) {
    if (a.pause_before) {
      cache.OnGesturePause();
    }
    cache.Access(a.row / kRowsPerBlock, a.row);
  }
  RunResult out;
  out.hit_rate = cache.stats().hit_rate();
  out.admissions = cache.stats().admissions;
  out.evictions = cache.stats().evictions;
  return out;
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-CACHE", "paper Section 2.6 'Caching Data'",
      "Hit rate re-examining previously seen regions: plain LRU vs the\n"
      "gesture-aware policy (bypass admission during one-directional\n"
      "scans, resume on reversal/pause).");

  std::printf("\n");
  dbtouch::bench::Table table({"capacity_blocks", "policy", "hit_rate",
                               "admissions", "evictions"});
  for (const std::int64_t capacity : {32L, 64L, 128L, 512L}) {
    for (const bool aware : {false, true}) {
      const RunResult r = Run(aware, capacity);
      table.Row({dbtouch::bench::Fmt(capacity),
                 aware ? "gesture-aware" : "plain-LRU",
                 dbtouch::bench::Fmt(r.hit_rate, 3),
                 dbtouch::bench::Fmt(r.admissions),
                 dbtouch::bench::Fmt(r.evictions)});
    }
  }
  std::printf(
      "\nThe gesture-aware policy matches plain LRU's hit rate while\n"
      "admitting ~40x fewer blocks (scans are served from the working\n"
      "buffer and never pollute the cache), so the studied regions survive\n"
      "intervening scans with zero evictions at every capacity. Plain LRU\n"
      "buys the same hit rate with constant churn — hundreds of evictions\n"
      "of exactly the blocks the user may return to.\n\n");
}

void BM_CacheAccess(benchmark::State& state) {
  BlockCache::Config config;
  config.capacity_blocks = 128;
  config.gesture_aware = state.range(0) == 1;
  BlockCache cache(config);
  dbtouch::Rng rng(1);
  for (auto _ : state) {
    const RowId row = static_cast<RowId>(rng.NextBounded(10'000'000));
    cache.Access(row / kRowsPerBlock, row);
  }
  state.SetLabel(config.gesture_aware ? "gesture-aware" : "plain-LRU");
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
