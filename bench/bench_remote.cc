// ABL-REMOTE — paper Section 4 "Remote Processing": the tablet as an
// interface to a server holding base data and big samples. Compared:
// local-sample-only, naive per-touch RPC, and the paper's hybrid (instant
// local partial answers + batched server refinement), across round-trip
// times.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "remote/network.h"
#include "remote/remote_store.h"
#include "storage/datagen.h"

namespace {

using dbtouch::remote::NetworkConfig;
using dbtouch::remote::RemoteClient;
using dbtouch::remote::RemoteServer;
using dbtouch::remote::RemoteStrategy;
using dbtouch::remote::RemoteStrategyName;
using dbtouch::remote::SimulatedNetwork;
using dbtouch::sim::Micros;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;

constexpr std::int64_t kRows = 10'000'000;

struct RunResult {
  double first_ms = 0.0;
  double refined_ms = 0.0;
  std::int64_t requests = 0;
  std::int64_t bytes_down = 0;
};

RunResult Run(RemoteServer* server, RemoteStrategy strategy,
              Micros one_way_latency) {
  NetworkConfig net_config;
  net_config.one_way_latency_us = one_way_latency;
  SimulatedNetwork network(net_config);
  RemoteClient::Config config;
  config.strategy = strategy;
  config.target_level = 4;  // Refinement fidelity the user asked for.
  RemoteClient client(server, &network, config);
  // One 4-second slide: 60 touches over the column.
  Micros now = 0;
  for (int i = 0; i < 60; ++i) {
    client.OnTouch(now, (kRows / 60) * i);
    now += 66'666;
  }
  client.Flush(now);
  RunResult out;
  out.first_ms = client.stats().avg_first_answer_ms();
  out.refined_ms = client.stats().avg_refined_ms();
  out.requests = network.requests_sent();
  out.bytes_down = network.bytes_down();
  return out;
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-REMOTE", "paper Section 4 'Remote Processing'",
      "One 4s slide (60 touches) over a remote-backed 10^7-row column.\n"
      "avg_first_ms = wait before anything shows; avg_refined_ms = wait\n"
      "for full-fidelity values.");

  Column base = dbtouch::storage::MakePaperEvalColumn(kRows);
  RemoteServer server(base.View());

  for (const Micros latency : {Micros{5'000}, Micros{20'000},
                               Micros{80'000}}) {
    std::printf("\nRound-trip one-way latency: %lld ms\n\n",
                static_cast<long long>(latency / 1000));
    dbtouch::bench::Table table({"strategy", "avg_first_ms",
                                 "avg_refined_ms", "requests",
                                 "bytes_down"});
    for (const RemoteStrategy strategy :
         {RemoteStrategy::kLocalOnly, RemoteStrategy::kPerTouchRpc,
          RemoteStrategy::kBatchedHybrid}) {
      const RunResult r = Run(&server, strategy, latency);
      table.Row({RemoteStrategyName(strategy),
                 dbtouch::bench::Fmt(r.first_ms, 2),
                 dbtouch::bench::Fmt(r.refined_ms, 2),
                 dbtouch::bench::Fmt(r.requests),
                 dbtouch::bench::Fmt(r.bytes_down)});
    }
  }
  std::printf(
      "\nPer-touch RPC makes every touch wait a round trip (and sends 60\n"
      "requests); the hybrid answers instantly from the local sample and\n"
      "refines via a handful of batched ranged reads — the paper's design\n"
      "point. Local-only never pays the network but never refines.\n\n");
}

void BM_HybridTouch(benchmark::State& state) {
  Column base = dbtouch::storage::MakePaperEvalColumn(1'000'000);
  RemoteServer server(base.View());
  SimulatedNetwork network;
  RemoteClient::Config config;
  config.strategy = RemoteStrategy::kBatchedHybrid;
  RemoteClient client(&server, &network, config);
  Micros now = 0;
  RowId row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.OnTouch(now, row));
    now += 66'666;
    row = (row + 16'667) % 1'000'000;
  }
}
BENCHMARK(BM_HybridTouch);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
