// SERVER — multi-session touch server: aggregate touch throughput and
// tail latency as concurrent sessions grow 1 -> N over one shared catalog.
//
// Two regimes per session count:
//
//   paced  — every session replays its slide trace on the gesture's own
//            timeline (touch events released at 15 Hz). This is the
//            fidelity regime: the server is keeping up when p99 latency
//            stays inside the frame deadline and misses stay rare.
//            Aggregate throughput grows ~linearly with sessions until the
//            machine saturates.
//
//   flood  — all events released immediately; the worker pool drains the
//            backlog as fast as it can. This is the capacity regime: raw
//            touches/second, plus how the EDF scheduler sheds (dropped
//            quanta) once deadlines are unmeetable by construction.
//
// Expectation on a >=4-core host: paced aggregate throughput at 16
// sessions is >4x the 1-session figure with p99 within the frame budget;
// flood throughput scales with cores. Default sweep ends at 16 sessions;
// pass --max-sessions=256 for the full curve.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "cache/block_provider.h"
#include "server/frame_scheduler.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace {

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::server::FrameScheduler;
using dbtouch::server::ServerStatsSnapshot;
using dbtouch::server::SessionId;
using dbtouch::server::SteadyNowUs;
using dbtouch::server::TouchServer;
using dbtouch::server::TouchServerConfig;
using dbtouch::server::TouchTask;
using dbtouch::server::TraceSubmitOptions;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

std::int64_t g_rows = 1'000'000;
double g_slide_seconds = 2.0;

struct RunResult {
  double wall_s = 0.0;
  double touches_per_s = 0.0;
  ServerStatsSnapshot stats;
};

RunResult RunSessions(int sessions, bool paced, bool tracing = false) {
  TouchServerConfig config;
  config.num_workers = 0;  // Hardware concurrency.
  config.enable_tracing = tracing;
  TouchServer server(config);
  {
    std::vector<Column> cols;
    cols.push_back(dbtouch::storage::GenSequenceInt64("v", g_rows, 0, 1));
    if (!server.RegisterTable(*Table::FromColumns("t", std::move(cols)))
             .ok()) {
      return {};
    }
  }
  if (!server.Start().ok()) {
    return {};
  }

  Kernel reference;  // Device geometry for trace synthesis.
  TraceBuilder builder(reference.device());
  const auto trace =
      builder.Slide("slide", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(g_slide_seconds));

  std::vector<SessionId> ids;
  for (int i = 0; i < sessions; ++i) {
    const auto session = server.OpenSession();
    if (!session.ok()) {
      return {};
    }
    const auto object = server.CreateColumnObject(
        *session, "t", "v", RectCm{2.0, 1.0, 2.0, 10.0});
    // Mixed fleet: even sessions slide-scan base data (every touch pins a
    // block of the shared BufferManager), odd sessions run the classic
    // sampled summary (reads shared sample copies instead).
    const ActionConfig action =
        i % 2 == 0 ? ActionConfig::Scan() : ActionConfig::Summary(10);
    if (!object.ok() ||
        !server.SetAction(*session, *object, action).ok()) {
      return {};
    }
    ids.push_back(*session);
  }

  const auto start_us = SteadyNowUs();
  TraceSubmitOptions options;
  options.paced = paced;
  for (const SessionId id : ids) {
    if (!server.SubmitTrace(id, trace, options).ok()) {
      return {};
    }
  }
  if (!server.Drain().ok()) {
    return {};
  }
  RunResult result;
  result.wall_s = static_cast<double>(SteadyNowUs() - start_us) / 1e6;
  result.stats = server.stats();
  result.touches_per_s =
      result.wall_s > 0.0
          ? static_cast<double>(result.stats.executed) / result.wall_s
          : 0.0;
  (void)server.Stop();
  return result;
}

void PrintRegime(const char* name, const std::vector<int>& sweep,
                 bool paced) {
  std::printf("\n[%s]\n", name);
  dbtouch::bench::Table table({"sessions", "touches/s", "speedup", "p50_ms",
                               "p99_ms", "misses", "dropped", "fairness",
                               "buf_hit", "buf_faults", "buf_res_KiB"});
  double base_throughput = 0.0;
  for (const int sessions : sweep) {
    const RunResult r = RunSessions(sessions, paced);
    if (sessions == sweep.front()) {
      base_throughput = r.touches_per_s;
    }
    table.Row({dbtouch::bench::Fmt(static_cast<std::int64_t>(sessions)),
               dbtouch::bench::Fmt(r.touches_per_s, 1),
               dbtouch::bench::Fmt(base_throughput > 0.0
                                       ? r.touches_per_s / base_throughput
                                       : 0.0,
                                   2),
               dbtouch::bench::Fmt(
                   static_cast<double>(r.stats.p50_latency_us) / 1e3, 2),
               dbtouch::bench::Fmt(
                   static_cast<double>(r.stats.p99_latency_us) / 1e3, 2),
               dbtouch::bench::Fmt(r.stats.deadline_misses),
               dbtouch::bench::Fmt(r.stats.dropped_quanta),
               dbtouch::bench::Fmt(r.stats.fairness, 3),
               dbtouch::bench::Fmt(r.stats.buffer.hit_rate(), 3),
               dbtouch::bench::Fmt(r.stats.buffer.faulted_blocks),
               dbtouch::bench::Fmt(r.stats.buffer.peak_resident_bytes /
                                   1024)});
  }
}

// ---- Cold tier: synchronous faults vs the async fetch pipeline -------------

/// A slow backing store: in-memory blocks served with an injected
/// per-fetch latency, advertised async() so the server may suspend on it.
class SlowTierProvider final : public dbtouch::cache::BlockProvider {
 public:
  SlowTierProvider(std::shared_ptr<const Table> table, std::size_t column,
                   std::int64_t rows_per_block, double latency_ms)
      : inner_(std::move(table), column, rows_per_block),
        latency_(latency_ms) {}

  const dbtouch::cache::BlockGeometry& geometry() const override {
    return inner_.geometry();
  }
  const dbtouch::storage::Dictionary* dictionary() const override {
    return inner_.dictionary();
  }
  bool async() const override { return true; }
  dbtouch::Result<std::vector<std::byte>> Fetch(
      std::int64_t block) override {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(latency_));
    return inner_.Fetch(block);
  }

 private:
  dbtouch::cache::TableBlockProvider inner_;
  double latency_;
};

RunResult RunColdTier(int sessions, bool async_fetch, double latency_ms,
                      bool tracing = false) {
  TouchServerConfig config;
  config.num_workers = 2;  // Few workers: a blocking fault hurts.
  config.async_fetch = async_fetch;
  config.enable_tracing = tracing;
  config.session_defaults.buffer.rows_per_block = 8'192;
  config.session_defaults.buffer.fetch.num_fetchers = 4;
  TouchServer server(config);
  // One cold table per session: every session faults its own blocks, as
  // a fleet of users exploring different datasets would.
  std::vector<SessionId> ids;
  Kernel reference;
  TraceBuilder builder(reference.device());
  for (int i = 0; i < sessions; ++i) {
    const std::string name = "cold" + std::to_string(i);
    std::vector<Column> cols;
    cols.push_back(dbtouch::storage::GenSequenceInt64("v", g_rows, 0, 1));
    auto table = *Table::FromColumns(name, std::move(cols));
    if (!server.RegisterTable(table).ok()) {
      return {};
    }
    auto provider = std::make_shared<SlowTierProvider>(
        table, 0, config.session_defaults.buffer.rows_per_block,
        latency_ms);
    if (!server.shared().SetColumnProvider(name, 0, provider).ok()) {
      return {};
    }
  }
  if (!server.Start().ok()) {
    return {};
  }
  for (int i = 0; i < sessions; ++i) {
    const auto session = server.OpenSession();
    if (!session.ok()) {
      return {};
    }
    const auto object = server.CreateColumnObject(
        *session, "cold" + std::to_string(i), "v",
        RectCm{2.0, 1.0, 2.0, 10.0});
    if (!object.ok() ||
        !server.SetAction(*session, *object, ActionConfig::Scan()).ok()) {
      return {};
    }
    ids.push_back(*session);
  }
  // Paced replay: latency measures what a live user would wait for each
  // touch, so a worker stuck under a synchronous fault shows up as tail
  // latency for every session it was supposed to serve.
  const auto start_us = SteadyNowUs();
  const auto trace =
      builder.Slide("slide", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(g_slide_seconds));
  for (const SessionId id : ids) {
    if (!server.SubmitTrace(id, trace, {/*paced=*/true}).ok()) {
      return {};
    }
  }
  if (!server.Drain().ok()) {
    return {};
  }
  RunResult result;
  result.wall_s = static_cast<double>(SteadyNowUs() - start_us) / 1e6;
  result.stats = server.stats();
  result.touches_per_s =
      result.wall_s > 0.0
          ? static_cast<double>(result.stats.executed) / result.wall_s
          : 0.0;
  (void)server.Stop();
  return result;
}

void PrintColdTier(const std::vector<int>& sweep, double latency_ms) {
  std::printf("\n[cold tier: %.1f ms/block backing store, 2 workers]\n",
              latency_ms);
  dbtouch::bench::Table table(
      {"sessions", "mode", "touches/s", "p99_ms", "suspended", "demand",
       "prefetch", "retries", "errors", "shed"});
  for (const int sessions : sweep) {
    for (const bool async_fetch : {false, true}) {
      const RunResult r = RunColdTier(sessions, async_fetch, latency_ms);
      table.Row(
          {dbtouch::bench::Fmt(static_cast<std::int64_t>(sessions)),
           async_fetch ? "async" : "sync",
           dbtouch::bench::Fmt(r.touches_per_s, 1),
           dbtouch::bench::Fmt(
               static_cast<double>(r.stats.p99_latency_us) / 1e3, 2),
           dbtouch::bench::Fmt(r.stats.fetch.suspended_quanta),
           dbtouch::bench::Fmt(r.stats.fetch.demand_fetches),
           dbtouch::bench::Fmt(r.stats.fetch.prefetch_fetches),
           dbtouch::bench::Fmt(r.stats.fetch.retries),
           dbtouch::bench::Fmt(r.stats.fetch.fetch_errors),
           dbtouch::bench::Fmt(r.stats.fetch.shed_on_fetch_error)});
    }
  }
  std::printf(
      "\nsync mode faults block the worker under the fetch; async mode\n"
      "parks the session on the FetchQueue (suspended column) and the\n"
      "worker serves other sessions, so p99 under cold faults drops and\n"
      "prefetch warms the extrapolated slide path before the finger\n"
      "arrives.\n\n");
}

// ---- ABL-DEADLINE: deadline-sacred partial answers under cold faults -------

struct AblResult {
  double hit_rate = 0.0;
  std::int64_t executed = 0;
  std::int64_t misses = 0;
  std::int64_t partials = 0;
  std::int64_t refinements = 0;
  std::int64_t refinements_shed = 0;
  double refine_p99_us = 0.0;
  /// Every partial answer accounted for: refined or explicitly shed.
  bool converged = false;
};

/// Cold-fault regime where every classic park is a guaranteed deadline
/// miss by construction: per-block fetch latency is several times the
/// frame budget. With partial_answers off the server can only park and
/// miss; with it on, every stalled slide quantum answers from the
/// resident sample level inside its deadline and refines when the blocks
/// land. Prefetch is disabled so the deadline mechanism is isolated —
/// every block the finger reaches is a cold fault at touch time.
AblResult RunAblDeadline(int sessions, bool partial_answers,
                         double latency_ms, dbtouch::sim::Micros budget_us) {
  TouchServerConfig config;
  config.num_workers = 2;
  config.async_fetch = true;
  config.partial_answers = partial_answers;
  config.base_frame_budget_us = budget_us;
  config.min_frame_budget_us = budget_us;
  config.session_defaults.buffer.rows_per_block = 8'192;
  config.session_defaults.buffer.fetch.num_fetchers = 4;
  config.session_defaults.prefetch_enabled = false;
  TouchServer server(config);
  Kernel reference;
  TraceBuilder builder(reference.device());
  for (int i = 0; i < sessions; ++i) {
    const std::string name = "abl" + std::to_string(i);
    std::vector<Column> cols;
    cols.push_back(dbtouch::storage::GenSequenceInt64("v", g_rows, 0, 1));
    auto table = *Table::FromColumns(name, std::move(cols));
    if (!server.RegisterTable(table).ok()) {
      return {};
    }
    auto provider = std::make_shared<SlowTierProvider>(
        table, 0, config.session_defaults.buffer.rows_per_block, latency_ms);
    if (!server.shared().SetColumnProvider(name, 0, provider).ok()) {
      return {};
    }
  }
  if (!server.Start().ok()) {
    return {};
  }
  std::vector<SessionId> ids;
  for (int i = 0; i < sessions; ++i) {
    const auto session = server.OpenSession();
    if (!session.ok()) {
      return {};
    }
    const auto object = server.CreateColumnObject(
        *session, "abl" + std::to_string(i), "v",
        RectCm{2.0, 1.0, 2.0, 10.0});
    if (!object.ok() ||
        !server.SetAction(*session, *object, ActionConfig::Scan()).ok()) {
      return {};
    }
    ids.push_back(*session);
  }
  // Warm-up: one tap at the slide's start point per session faults the
  // first block in and seeds the fetch-latency EWMA. The contract extends
  // deadlines only by MEASURED latency, so an unmeasured tier parks
  // classically — the measured run must begin with a truthful model.
  const auto tap = builder.Tap("warm", PointCm{3.0, 1.0});
  for (const SessionId id : ids) {
    if (!server.SubmitTrace(id, tap, {/*paced=*/false}).ok()) {
      return {};
    }
  }
  if (!server.Drain().ok()) {
    return {};
  }
  // Measure the slide regime as a delta past the warm-up's stats: the
  // warm-up taps park on an unmeasured tier and miss by design.
  const ServerStatsSnapshot before = server.stats();
  const auto trace =
      builder.Slide("slide", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(2.0));
  for (const SessionId id : ids) {
    if (!server.SubmitTrace(id, trace, {/*paced=*/true}).ok()) {
      return {};
    }
  }
  if (!server.Drain().ok()) {
    return {};
  }
  const ServerStatsSnapshot after = server.stats();
  AblResult r;
  r.executed = after.executed - before.executed;
  r.misses = after.deadline_misses - before.deadline_misses;
  r.partials = after.partial_answers - before.partial_answers;
  r.refinements = after.refinements - before.refinements;
  r.refinements_shed = after.refinements_shed - before.refinements_shed;
  r.hit_rate = r.executed > 0 ? 1.0 - static_cast<double>(r.misses) /
                                          static_cast<double>(r.executed)
                              : 0.0;
  r.refine_p99_us =
      static_cast<double>(after.stages.refine.Percentile(0.99));
  r.converged = r.partials == r.refinements + r.refinements_shed;
  (void)server.Stop();
  return r;
}

/// Returns false (and prints FAILED) when the deadline/fidelity contract
/// does not hold end-to-end; metrics + gates land in `report`.
bool AblDeadline(bool smoke, dbtouch::bench::BenchReport& report) {
  const int sessions = 8;
  const double latency_ms = smoke ? 15.0 : 25.0;
  const dbtouch::sim::Micros budget_us = 5'000;
  std::printf(
      "\n[ABL-DEADLINE: %d sessions, %.0f ms/block cold tier, %lld us "
      "frame budget]\n",
      sessions, latency_ms, static_cast<long long>(budget_us));
  const AblResult classic =
      RunAblDeadline(sessions, /*partial_answers=*/false, latency_ms,
                     budget_us);
  const AblResult partial =
      RunAblDeadline(sessions, /*partial_answers=*/true, latency_ms,
                     budget_us);
  dbtouch::bench::Table table({"mode", "executed", "hit_rate", "partials",
                               "refined", "shed", "refine_p99_ms"});
  const auto row = [&](const char* name, const AblResult& r) {
    table.Row({name, dbtouch::bench::Fmt(r.executed),
               dbtouch::bench::Fmt(r.hit_rate, 4),
               dbtouch::bench::Fmt(r.partials),
               dbtouch::bench::Fmt(r.refinements),
               dbtouch::bench::Fmt(r.refinements_shed),
               dbtouch::bench::Fmt(r.refine_p99_us / 1e3, 2)});
  };
  row("park (classic)", classic);
  row("partial+refine", partial);
  const bool abl_ok = partial.executed > 0 && partial.hit_rate >= 0.99 &&
                      partial.partials > 0 && partial.converged &&
                      partial.hit_rate > classic.hit_rate;
  std::printf(
      "\nABL-DEADLINE %s: fetch latency >> frame budget makes every classic\n"
      "park a guaranteed miss; the deadline-sacred path answers from the\n"
      "resident sample level inside the deadline (hit_rate >= 0.99) and\n"
      "every partial answer converges to full fidelity (partials ==\n"
      "refined + shed: %lld == %lld + %lld).\n",
      abl_ok ? "OK" : "FAILED", static_cast<long long>(partial.partials),
      static_cast<long long>(partial.refinements),
      static_cast<long long>(partial.refinements_shed));
  report.Metric("abl_deadline_hit_rate", partial.hit_rate);
  report.Metric("abl_classic_hit_rate", classic.hit_rate);
  report.Metric("abl_partial_answers", partial.partials);
  report.Metric("abl_refinements", partial.refinements);
  report.Metric("abl_refine_p99_us", partial.refine_p99_us);
  // The hit-rate gate is tight (it is the contract); refinement p99 is
  // wall-clock on a shared runner, so its gate only catches rot.
  report.Gate("abl_deadline_hit_rate", "higher", 0.01);
  report.Gate("abl_refine_p99_us", "lower", 1.0);
  return abl_ok;
}

// ---- Perf trajectory: BENCH_server.json + tracing-overhead A/B -------------

/// Runs the trajectory regimes, prints the tracing A/B, and writes
/// BENCH_server.json — the metric report CI diffs against the checked-in
/// baseline (bench/baselines/BENCH_server.json). Exits non-zero when the
/// observability layer itself is broken (no spans recorded, or the stage
/// histograms stop summing to the end-to-end latency).
/// Interleaved best-of-N flood A/B for the tracing overhead number.
/// The paced regime cannot resolve a ~ns-scale hook cost at the tail: its
/// p99 is the worst of tens of touches, and that worst touch is a multi-ms
/// OS timer/condvar wakeup outlier on whichever arm drew it. Flood is the
/// regime where p99 IS code cost: queue wait is deterministic backlog
/// depth (identical in both arms — and it *amplifies* any real per-quantum
/// overhead by the queue length), samples are cheap enough that p99 sits
/// ~12 samples inside the tail, and any hook cost lands directly in the
/// drain critical path. Arms are interleaved (later runs in a process are
/// systematically faster as allocator pools warm) and each arm keeps its
/// min-p99 run.
std::pair<RunResult, RunResult> RunTraceAb(int sessions, int reps) {
  RunResult best_off;
  RunResult best_on;
  for (int i = 0; i < reps; ++i) {
    RunResult off = RunSessions(sessions, /*paced=*/false, /*tracing=*/false);
    RunResult on = RunSessions(sessions, /*paced=*/false, /*tracing=*/true);
    if (i == 0 || off.stats.p99_latency_us < best_off.stats.p99_latency_us) {
      best_off = std::move(off);
    }
    if (i == 0 || on.stats.p99_latency_us < best_on.stats.p99_latency_us) {
      best_on = std::move(on);
    }
  }
  return {std::move(best_off), std::move(best_on)};
}

/// Nanoseconds per TraceRecorder::Record, timed over a large tight loop.
/// Wall-clock p99 A/Bs on shared runners have a ±15% noise floor — they
/// show statistical equivalence, but cannot resolve the 2% overhead
/// budget. This can: per-record cost × records-per-quantum / p99 is the
/// overhead tracing is even capable of adding to the tail.
double MeasureHookCostNs() {
  dbtouch::obs::TraceRecorderConfig config;
  dbtouch::obs::TraceRecorder recorder(config);
  constexpr int kRecords = 200'000;
  const auto start_us = SteadyNowUs();
  for (int i = 0; i < kRecords; ++i) {
    recorder.Record(dbtouch::obs::SpanStage::kExecuting,
                    /*quantum_id=*/i + 1, /*session_id=*/i % 16);
  }
  const auto wall_us = SteadyNowUs() - start_us;
  return static_cast<double>(wall_us) * 1e3 / kRecords;
}

void PerfTrajectory(bool smoke) {
  std::printf("\n[perf trajectory]\n");
  const int sessions = smoke ? 2 : 8;
  // Tracing A/B: identical flood load with the span ring off and on, a
  // long gesture for tail samples (flood ignores pacing, so a longer
  // trace costs touches, not seconds), and a discarded warmup run for
  // first-run thread/pool init.
  const double saved_slide_seconds = g_slide_seconds;
  g_slide_seconds = 5.0;
  const int ab_sessions = std::max(sessions, 12);
  (void)RunSessions(ab_sessions, /*paced=*/false, /*tracing=*/false);
  const auto [flood_off, flood] = RunTraceAb(ab_sessions, /*reps=*/10);
  g_slide_seconds = saved_slide_seconds;
  // Paced = what a live user waits; best-of-3 because a paced run's tail
  // is a handful of touches and rides OS wakeup outliers.
  RunResult paced_on;
  for (int i = 0; i < 3; ++i) {
    RunResult r = RunSessions(sessions, /*paced=*/true, /*tracing=*/true);
    if (i == 0 ||
        r.stats.p99_latency_us < paced_on.stats.p99_latency_us) {
      paced_on = std::move(r);
    }
  }
  // Cold tier exercises suspend/park/fetch/resume, so fetch_stall is a
  // real (non-zero) stage in this run.
  const RunResult cold =
      RunColdTier(2, /*async_fetch=*/true, smoke ? 1.0 : 5.0,
                  /*tracing=*/true);

  const auto p = [](const dbtouch::obs::HistogramSnapshot& h, double q) {
    return static_cast<double>(h.Percentile(q)) / 1e3;
  };
  dbtouch::bench::Table table({"regime", "p50_ms", "p99_ms", "queue_p99",
                               "exec_p99", "stall_p99"});
  const auto row = [&](const char* name, const RunResult& r) {
    table.Row({name,
               dbtouch::bench::Fmt(
                   static_cast<double>(r.stats.p50_latency_us) / 1e3, 2),
               dbtouch::bench::Fmt(
                   static_cast<double>(r.stats.p99_latency_us) / 1e3, 2),
               dbtouch::bench::Fmt(p(r.stats.stages.queue_wait, 0.99), 2),
               dbtouch::bench::Fmt(p(r.stats.stages.exec, 0.99), 2),
               dbtouch::bench::Fmt(p(r.stats.stages.fetch_stall, 0.99), 2)});
  };
  row("flood/trace-off", flood_off);
  row("flood/trace-on", flood);
  row("paced/trace-on", paced_on);
  row("cold/trace-on", cold);

  const double p99_off = static_cast<double>(flood_off.stats.p99_latency_us);
  const double p99_on = static_cast<double>(flood.stats.p99_latency_us);
  const double trace_delta_pct =
      p99_off > 0.0 ? (p99_on - p99_off) / p99_off * 100.0 : 0.0;
  std::printf("\ntracing p99 A/B delta: %.2f%% (off %.2f ms, on %.2f ms; "
              "shared-runner noise floor ~15%%)\n",
              trace_delta_pct, p99_off / 1e3, p99_on / 1e3);
  // The 2% overhead budget, resolved deterministically: even a quantum
  // that suspends once records ~10 spans, so 10x the measured per-record
  // cost bounds what tracing can add to a touch. Relate that to the
  // user-facing (paced) p99.
  const double hook_ns = MeasureHookCostNs();
  constexpr double kRecordsPerQuantum = 10.0;
  const double paced_p99_us =
      static_cast<double>(paced_on.stats.p99_latency_us);
  const double implied_pct =
      paced_p99_us > 0.0
          ? kRecordsPerQuantum * hook_ns / (paced_p99_us * 1e3) * 100.0
          : 100.0;
  std::printf("tracing hook cost: %.0f ns/record; %.0f records/quantum "
              "= %.3f%% of paced p99 %.2f ms (budget <2%%)\n",
              hook_ns, kRecordsPerQuantum, implied_pct, paced_p99_us / 1e3);

  // Observability self-checks — the smoke gate for this subsystem. The
  // stage sums are exact accumulations and the worker-loop timing tiles
  // [release, done] with no gaps, so the invariant is exact equality.
  const auto& st = flood.stats.stages;
  const std::int64_t stage_sum =
      st.queue_wait.sum + st.exec.sum + st.fetch_stall.sum;
  const bool spans_ok = flood.stats.executed > 0 &&
                        st.e2e.count == flood.stats.executed &&
                        stage_sum == st.e2e.sum &&
                        cold.stats.stages.fetch_stall.max > 0 &&
                        implied_pct < 2.0;
  std::printf(
      "observability %s: stage sums %lld us vs e2e %lld us over %lld "
      "touches; cold-tier stall p99 %.2f ms\n",
      spans_ok ? "OK" : "FAILED", static_cast<long long>(stage_sum),
      static_cast<long long>(st.e2e.sum),
      static_cast<long long>(st.e2e.count),
      p(cold.stats.stages.fetch_stall, 0.99));

  dbtouch::bench::BenchReport report("server");
  report.Metric("flood_touches_per_s", flood.touches_per_s);
  report.Metric("paced_touches_per_s", paced_on.touches_per_s);
  report.Metric("paced_p50_us", paced_on.stats.p50_latency_us);
  report.Metric("paced_p99_us", paced_on.stats.p99_latency_us);
  report.Metric("paced_miss_rate", paced_on.stats.miss_rate());
  report.Metric("trace_p99_delta_pct", trace_delta_pct);
  report.Metric("trace_hook_ns_per_record", hook_ns);
  report.Metric("trace_implied_p99_overhead_pct", implied_pct);
  // Stage percentiles come from the flood arm: its queue depth (and so
  // its stage mix) is structural, not OS-wakeup noise like paced.
  report.Metric("queue_wait_p50_us",
                flood.stats.stages.queue_wait.Percentile(0.50));
  report.Metric("queue_wait_p99_us",
                flood.stats.stages.queue_wait.Percentile(0.99));
  report.Metric("exec_p50_us", flood.stats.stages.exec.Percentile(0.50));
  report.Metric("exec_p99_us", flood.stats.stages.exec.Percentile(0.99));
  report.Metric("fetch_stall_p50_us",
                cold.stats.stages.fetch_stall.Percentile(0.50));
  report.Metric("fetch_stall_p99_us",
                cold.stats.stages.fetch_stall.Percentile(0.99));
  report.Metric("buffer_hit_rate", flood.stats.buffer.hit_rate());
  report.Metric("buffer_faults", flood.stats.buffer.faulted_blocks);
  report.Metric("cold_suspended_quanta",
                cold.stats.fetch.suspended_quanta);
  const double cold_blocks =
      static_cast<double>(cold.stats.fetch.demand_fetches +
                          cold.stats.fetch.prefetch_fetches);
  report.Metric("cold_ranged_read_ratio",
                cold_blocks > 0.0
                    ? static_cast<double>(cold.stats.fetch.ranged_blocks) /
                          cold_blocks
                    : 0.0);
  // Gates: counts and ratios are load-shaped (tight); wall-clock numbers
  // vary with the host (loose). Tolerances live in the baseline file;
  // see tools/compare_bench.py.
  // Wall-clock gates are wide (CI runners differ from the machine that
  // wrote the baseline); they exist to catch order-of-magnitude rot, not
  // host variance. The ratio gate keeps the ISSUE-default 20%.
  report.Gate("flood_touches_per_s", "higher", 0.7);
  report.Gate("paced_p50_us", "lower", 1.0);
  report.Gate("buffer_hit_rate", "higher", 0.2);
  const bool abl_ok = AblDeadline(smoke, report);
  report.Write("BENCH_server.json");
  if (!spans_ok || !abl_ok) {
    std::exit(1);  // The --smoke CI step must fail on observability rot
                   // or a broken deadline/fidelity contract.
  }
}

void PrintReport(int max_sessions, bool smoke) {
  dbtouch::bench::Banner(
      "SERVER", "multi-session touch server",
      "Aggregate touch throughput and tail latency vs. concurrent "
      "sessions over one shared catalog.");
  std::vector<int> sweep;
  for (int s = 1; s <= max_sessions; s *= 4) {
    sweep.push_back(s);
  }
  if (sweep.back() != max_sessions) {
    sweep.push_back(max_sessions);
  }
  PrintRegime("paced: events released at gesture speed", sweep, true);
  PrintRegime("flood: backlog drained at full tilt", sweep, false);
  std::printf(
      "\nPaced throughput is served load: it must scale ~linearly with\n"
      "sessions while p99 stays inside the frame budget (the deadline\n"
      "contract holds). Flood throughput is capacity: it scales with\n"
      "cores until sessions contend, after which EDF sheds late move\n"
      "quanta instead of stalling gesture streams. buf_* columns track\n"
      "the shared BufferManager: every session's base-data reads pin\n"
      "blocks of one bounded pool (buf_res_KiB <= its byte budget).\n\n");
  PrintColdTier(sweep, smoke ? 1.0 : 5.0);
}

// Micro-benchmark: scheduler push/pop round trip, the per-quantum
// overhead every touch pays on top of kernel execution.
void BM_SchedulerRoundTrip(benchmark::State& state) {
  FrameScheduler scheduler;
  std::int64_t seq = 0;
  for (auto _ : state) {
    TouchTask task;
    task.session_id = seq % 16;
    task.deadline_us = SteadyNowUs() + 1'000'000 + (seq % 7) * 100;
    ++seq;
    scheduler.Push(task);
    auto popped = scheduler.PopRunnable();
    benchmark::DoNotOptimize(popped);
    scheduler.OnTaskDone(popped->session_id);
  }
}
BENCHMARK(BM_SchedulerRoundTrip);

}  // namespace

int main(int argc, char** argv) {
  int max_sessions = 16;
  bool smoke = false;
  for (int i = 1; i < argc;) {
    const char* prefix = "--max-sessions=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      max_sessions = std::atoi(argv[i] + std::strlen(prefix));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI bit-rot guard: tiny data and sweeps so every regime (incl. the
      // cold tier) runs in seconds, not minutes.
      smoke = true;
      max_sessions = 2;
      g_rows = 100'000;
      g_slide_seconds = 0.3;
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) {
      argv[j] = argv[j + 1];
    }
    --argc;
  }
  if (max_sessions < 1) {
    max_sessions = 1;
  }
  PrintReport(max_sessions, smoke);
  PerfTrajectory(smoke);
  benchmark::Initialize(&argc, argv);
  if (!smoke) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
