// FIG4A — paper Figure 4(a): "Effect of varying slide gesture speed during
// a slide for interactive summaries."
//
// Set-up reproduced from Section 3: a vertical rectangle object of height
// 10 cm represents a column of 10^7 integer values; interactive summaries
// with average aggregation and 10 data entries per summary; the slide runs
// top to bottom at a constant speed; each run completes in a different
// total time. Measured: number of data entries (summaries) returned.
//
// Paper's claim: slower gestures register more touches and return more
// entries — roughly linearly in gesture duration (~60 entries at 4 s).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace {

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::KernelConfig;
using dbtouch::core::ObjectId;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

constexpr std::int64_t kPaperRows = 10'000'000;  // 10^7 integer values.
constexpr double kObjectHeightCm = 10.0;

std::unique_ptr<Kernel> MakePaperKernel(std::int64_t rows,
                                        double touch_hz = 15.0) {
  KernelConfig config;
  config.device.touch_event_hz = touch_hz;
  auto kernel = std::make_unique<Kernel>(config);
  std::vector<Column> cols;
  cols.push_back(dbtouch::storage::MakePaperEvalColumn(rows));
  auto table = Table::FromColumns("eval", std::move(cols));
  if (!kernel->RegisterTable(std::move(table).value()).ok()) {
    std::abort();
  }
  return kernel;
}

ObjectId MakePaperObject(Kernel* kernel) {
  auto id = kernel->CreateColumnObject(
      "eval", "values", RectCm{2.0, 1.0, 2.0, kObjectHeightCm});
  if (!id.ok() ||
      !kernel
           ->SetAction(*id, ActionConfig::Summary(
                                10, dbtouch::exec::AggKind::kAvg))
           .ok()) {
    std::abort();
  }
  return *id;
}

std::int64_t RunSlide(double duration_s, std::int64_t rows,
                      double touch_hz) {
  auto kernel = MakePaperKernel(rows, touch_hz);
  MakePaperObject(kernel.get());
  TraceBuilder builder(kernel->device());
  kernel->Replay(builder.Slide("fig4a", PointCm{3.0, 1.0},
                               PointCm{3.0, 1.0 + kObjectHeightCm},
                               MotionProfile::Constant(duration_s)));
  return kernel->stats().entries_returned;
}

void PrintReport() {
  dbtouch::bench::Banner(
      "FIG4A", "paper Figure 4(a), Section 3 'Varying Gesture Speed'",
      "Entries returned vs time to complete a slide (interactive\n"
      "summaries, avg, k=10, 10^7 ints, 10cm object). Slower slides see\n"
      "more data; the relation is ~linear in gesture duration.");

  std::printf("\nSeries at the calibrated device rate (15 registered "
              "touch-move events/sec):\n\n");
  dbtouch::bench::Table table(
      {"gesture_secs", "entries", "entries/sec", "paper(~15/sec)"});
  for (const double secs : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0}) {
    const std::int64_t entries = RunSlide(secs, kPaperRows, 15.0);
    table.Row({dbtouch::bench::Fmt(secs, 1), dbtouch::bench::Fmt(entries),
               dbtouch::bench::Fmt(static_cast<double>(entries) / secs, 1),
               dbtouch::bench::Fmt(15.0 * secs, 0)});
  }

  std::printf("\nShape is device-rate independent (same sweep at 60 "
              "events/sec):\n\n");
  dbtouch::bench::Table table60({"gesture_secs", "entries", "entries/sec"});
  for (const double secs : {0.5, 1.0, 2.0, 4.0}) {
    const std::int64_t entries = RunSlide(secs, kPaperRows, 60.0);
    table60.Row({dbtouch::bench::Fmt(secs, 1), dbtouch::bench::Fmt(entries),
                 dbtouch::bench::Fmt(static_cast<double>(entries) / secs,
                                     1)});
  }
  std::printf("\n");
}

// Micro-benchmark: full pipeline cost of one 2-second slide (wall time),
// dominated by per-touch execution.
void BM_Fig4aSlide(benchmark::State& state) {
  const double secs = static_cast<double>(state.range(0)) / 10.0;
  auto kernel = MakePaperKernel(1'000'000);  // Smaller data: fast set-up.
  MakePaperObject(kernel.get());
  TraceBuilder builder(kernel->device());
  const auto trace = builder.Slide("s", PointCm{3.0, 1.0},
                                   PointCm{3.0, 1.0 + kObjectHeightCm},
                                   MotionProfile::Constant(secs));
  for (auto _ : state) {
    kernel->Replay(trace);
  }
  state.counters["entries_per_replay"] = static_cast<double>(
      kernel->stats().entries_returned / state.iterations());
}
BENCHMARK(BM_Fig4aSlide)->Arg(5)->Arg(20)->Arg(40);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
