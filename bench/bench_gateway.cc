// Experiment: the wire-protocol gateway under interactive load.
//
// The paper's system is one user touching one screen. The gateway puts
// the server behind real sockets, so the question becomes: how many
// *concurrent paced users* can one host sustain while every touch still
// lands inside its display-frame budget — and what does the wire itself
// (framing, syscalls, roundtrips) cost on top of the in-process path
// that bench_server measures?
//
// Regimes:
//   churn  — connect / open / stats / close / disconnect cycles; the
//            session-lifecycle rate the front door sustains.
//   paced  — N sessions each replaying a seeded ICEBOAT-style gesture
//            timeline at gesture speed over its own connection
//            (src/gateway/replay.h); the headline regime, swept up
//            through 1k+ concurrent sessions.
//   flood  — the same timelines fired back-to-back with server pacing
//            off: wire throughput with admission control visible in
//            SubmitBatchResp.rejected.
//
// --smoke shrinks data and timelines so the whole report runs in
// seconds, dumps BENCH_gateway.json for the perf-trajectory gate
// (bench/baselines/BENCH_gateway.json), and exits non-zero when a
// self-check fails: paced p99 over the frame budget, wire protocol
// errors, leaked sessions or leaked connections.

#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "gateway/client.h"
#include "gateway/gateway.h"
#include "gateway/replay.h"
#include "gateway/wire.h"
#include "server/touch_server.h"
#include "sim/touch_device.h"
#include "storage/datagen.h"

namespace {

using dbtouch::Status;
using dbtouch::gateway::Client;
using dbtouch::gateway::Gateway;
using dbtouch::gateway::GatewayConfig;
using dbtouch::gateway::GatewayStatsSnapshot;
using dbtouch::gateway::ReplayConfig;
using dbtouch::gateway::ReplayHarness;
using dbtouch::gateway::ReplayResult;
using dbtouch::server::TouchServer;
using dbtouch::server::TouchServerConfig;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
namespace api = dbtouch::server::api;

std::int64_t g_rows = 1'000'000;
double g_slide_min_s = 0.4;
double g_slide_max_s = 1.2;
int g_gestures = 2;
bool g_failed = false;

void Check(bool ok, const char* what) {
  if (!ok) {
    std::printf("SELF-CHECK FAILED: %s\n", what);
    g_failed = true;
  }
}

/// Lifts the fd ceiling: the paced regime holds >1k client sockets plus
/// the gateway's accepted side in one process.
void RaiseFdLimit() {
  rlimit lim{};
  if (getrlimit(RLIMIT_NOFILE, &lim) == 0 && lim.rlim_cur < 16384) {
    lim.rlim_cur = lim.rlim_max < 16384 ? lim.rlim_max : 16384;
    setrlimit(RLIMIT_NOFILE, &lim);
  }
}

struct Stack {
  std::unique_ptr<TouchServer> server;
  std::unique_ptr<Gateway> gateway;

  static std::unique_ptr<Stack> Up() {
    auto stack = std::make_unique<Stack>();
    TouchServerConfig config;
    config.num_workers = 0;  // Hardware concurrency.
    stack->server = std::make_unique<TouchServer>(config);
    std::vector<Column> cols;
    cols.push_back(dbtouch::storage::GenSequenceInt64("v", g_rows, 0, 1));
    if (!stack->server->RegisterTable(*Table::FromColumns("t", std::move(cols)))
             .ok() ||
        !stack->server->Start().ok()) {
      return nullptr;
    }
    GatewayConfig gw;
    gw.num_loops = 2;
    stack->gateway = std::make_unique<Gateway>(*stack->server, gw);
    if (!stack->gateway->Start().ok()) return nullptr;
    return stack;
  }

  ~Stack() {
    if (gateway) (void)gateway->Stop();
    if (server) (void)server->Stop();
  }
};

// ---- churn -----------------------------------------------------------------

double RunChurn(const Stack& stack, int threads, int cycles_per_thread) {
  const std::uint16_t port = stack.gateway->port();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < cycles_per_thread; ++i) {
        Client client;
        if (!client.Connect("127.0.0.1", port).ok()) {
          failures.fetch_add(1);
          continue;
        }
        auto open = client.OpenSession();
        if (!open.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (!client.Stats().ok() ||
            !client.CloseSession(open->session).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  Check(failures.load() == 0, "churn cycles all succeed");
  return threads * cycles_per_thread / wall_s;
}

// ---- paced / flood ---------------------------------------------------------

ReplayResult RunReplay(const Stack& stack, int sessions, bool paced_wire,
                       bool pace_sends) {
  ReplayConfig config;
  config.port = stack.gateway->port();
  config.sessions = sessions;
  config.threads = 8;
  config.gestures_per_session = g_gestures;
  config.slide_min_s = g_slide_min_s;
  config.slide_max_s = g_slide_max_s;
  config.paced = paced_wire;
  config.pace_sends = pace_sends;
  config.table = "t";
  config.column = "v";
  config.snapshot_tail = 4;
  ReplayHarness harness(config);
  auto result = harness.Run();
  if (!result.ok()) {
    std::printf("replay failed: %s\n", result.status().message().c_str());
    Check(false, "replay harness runs");
    return {};
  }
  return *result;
}

}  // namespace

// ---- Report ----------------------------------------------------------------

int main(int argc, char** argv) {
  bool smoke = false;
  int max_sessions = 1024;
  for (int i = 1; i < argc;) {
    const char* prefix = "--max-sessions=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      max_sessions = std::atoi(argv[i] + std::strlen(prefix));
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      // CI guard: small table, one short gesture per session — the 1k+
      // session sweep still runs (that IS the acceptance bar), it just
      // replays ~half a second of timeline.
      smoke = true;
      g_rows = 100'000;
      g_slide_min_s = 0.3;
      g_slide_max_s = 0.5;
      g_gestures = 1;
    } else {
      ++i;
      continue;
    }
    for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
    --argc;
  }
  if (max_sessions < 1) max_sessions = 1;
  RaiseFdLimit();

  dbtouch::bench::Banner(
      "gateway", "conf_cidr_IdreosL13 Sections 2.4, 4",
      "One host serves 1k+ concurrent paced touch sessions over the wire "
      "with per-touch latency inside the display-frame budget.");

  const dbtouch::sim::TouchDevice device{dbtouch::sim::TouchDeviceConfig{}};
  const std::int64_t frame_budget_us = device.event_interval_us();

  // -- churn --
  std::printf("\n-- connection churn --\n");
  double churn_conns_per_s = 0.0;
  {
    auto stack = Stack::Up();
    if (stack == nullptr) {
      std::printf("FATAL: stack failed to start\n");
      return 1;
    }
    churn_conns_per_s = RunChurn(*stack, 8, smoke ? 64 : 512);
    std::printf("churn: %.0f conns/s (8 threads)\n", churn_conns_per_s);
    GatewayStatsSnapshot gw = stack->gateway->stats();
    Check(gw.protocol_errors == 0, "churn: no protocol errors");
    Check(gw.connections_active == 0, "churn: no leaked connections");
    Check(stack->server->session_count() == 0, "churn: no leaked sessions");
  }

  // -- paced sweep up through the 1k+ headline --
  std::printf("\n-- paced sessions (server pacing on, client pacing on) --\n");
  dbtouch::bench::Table table({"sessions", "touches/s", "p99_us", "ack_p99_us",
                               "send_lag_p99", "missed", "shed", "rejected"});
  double paced_touches_per_s = 0.0;
  std::int64_t paced_p99_us = 0;
  std::int64_t paced_ack_p99_us = 0;
  std::int64_t paced_send_lag_p99_us = 0;
  std::int64_t paced_sessions = 0;
  std::vector<int> sweep;
  if (smoke) {
    sweep = {128, max_sessions};
  } else {
    sweep = {64, 256, max_sessions};
  }
  for (int sessions : sweep) {
    auto stack = Stack::Up();
    if (stack == nullptr) {
      std::printf("FATAL: stack failed to start\n");
      return 1;
    }
    ReplayResult r = RunReplay(*stack, sessions, /*paced_wire=*/true,
                               /*pace_sends=*/true);
    const double touches_per_s =
        r.replay_wall_s > 0 ? r.server_stats.executed / r.replay_wall_s : 0;
    table.Row({dbtouch::bench::Fmt(static_cast<std::int64_t>(sessions)),
               dbtouch::bench::Fmt(touches_per_s, 0),
               dbtouch::bench::Fmt(r.server_stats.p99_latency_us),
               dbtouch::bench::Fmt(r.ack_rtt_us.Percentile(0.99)),
               dbtouch::bench::Fmt(r.send_lag_us.Percentile(0.99)),
               dbtouch::bench::Fmt(r.server_stats.deadline_misses),
               dbtouch::bench::Fmt(r.server_stats.dropped_quanta),
               dbtouch::bench::Fmt(r.events_rejected)});
    GatewayStatsSnapshot gw = stack->gateway->stats();
    Check(r.errors == 0, "paced: no client errors");
    Check(gw.protocol_errors == 0, "paced: no protocol errors");
    Check(stack->server->session_count() == 0, "paced: no leaked sessions");
    if (sessions == max_sessions) {
      paced_sessions = sessions;
      paced_touches_per_s = touches_per_s;
      paced_p99_us = r.server_stats.p99_latency_us;
      paced_ack_p99_us = r.ack_rtt_us.Percentile(0.99);
      paced_send_lag_p99_us = r.send_lag_us.Percentile(0.99);
      // THE acceptance bar: every touch of the headline sweep answered
      // inside the display-frame budget at the 99th percentile, and the
      // harness itself kept pace (send lag far below one frame, so the
      // p99 measured the server, not a lagging client).
      Check(paced_p99_us <= frame_budget_us,
            "paced: p99 latency within the frame budget at max sessions");
      Check(paced_send_lag_p99_us <= frame_budget_us,
            "paced: client kept its send schedule");
      Check(r.snapshot_results > 0, "paced: sessions produced results");
    }
  }
  std::printf("frame budget: %lld us\n",
              static_cast<long long>(frame_budget_us));

  // -- flood --
  std::printf("\n-- flood (no pacing anywhere) --\n");
  double flood_events_per_s = 0.0;
  std::int64_t flood_rejected = 0;
  {
    auto stack = Stack::Up();
    if (stack == nullptr) {
      std::printf("FATAL: stack failed to start\n");
      return 1;
    }
    const int sessions = smoke ? 64 : 256;
    ReplayResult r = RunReplay(*stack, sessions, /*paced_wire=*/false,
                               /*pace_sends=*/false);
    flood_events_per_s =
        r.replay_wall_s > 0 ? r.events_sent / r.replay_wall_s : 0;
    flood_rejected = r.events_rejected;
    std::printf("flood: %.0f events/s over the wire, %lld rejected "
                "(admission control)\n",
                flood_events_per_s, static_cast<long long>(flood_rejected));
    GatewayStatsSnapshot gw = stack->gateway->stats();
    Check(gw.protocol_errors == 0, "flood: no protocol errors");
    Check(stack->server->session_count() == 0, "flood: no leaked sessions");
  }

  // -- BENCH_gateway.json ----------------------------------------------------
  dbtouch::bench::BenchReport report("gateway");
  report.Metric("paced_sessions", paced_sessions);
  report.Metric("paced_touches_per_s", paced_touches_per_s);
  report.Metric("paced_p99_us", paced_p99_us);
  report.Metric("paced_ack_p99_us", paced_ack_p99_us);
  report.Metric("paced_send_lag_p99_us", paced_send_lag_p99_us);
  report.Metric("frame_budget_us", frame_budget_us);
  report.Metric("churn_conns_per_s", churn_conns_per_s);
  report.Metric("flood_events_per_s", flood_events_per_s);
  report.Metric("flood_rejected_events", flood_rejected);
  // Direction + tolerance live in the checked-in baseline; loopback wire
  // latencies on shared CI runners are noisy, hence the loose tols.
  report.Gate("paced_sessions", "higher", 0.0);
  report.Gate("paced_touches_per_s", "higher", 0.5);
  report.Gate("paced_p99_us", "lower", 1.0);
  report.Gate("paced_ack_p99_us", "lower", 2.0);
  report.Gate("churn_conns_per_s", "higher", 0.5);
  report.Gate("flood_events_per_s", "higher", 0.5);
  report.Write("BENCH_gateway.json");
  if (g_failed) {
    std::exit(1);  // The --smoke CI step must fail on gateway rot.
  }

  benchmark::Initialize(&argc, argv);
  if (!smoke) {
    benchmark::RunSpecifiedBenchmarks();
  }
  benchmark::Shutdown();
  return 0;
}
