// ABL-PREFETCH — paper Section 2.6 "Prefetching Data": extrapolating the
// gesture (speed and direction) and fetching expected entries ahead vs
// demand fetching, over a simulated slow medium.
//
// Scenarios: steady slide, pause-and-resume, and a 4x speed-up mid-slide
// (the cases the paper calls out: "find a good way and timing to
// extrapolate the gesture movement ... to avoid stalling once the query
// session resumes or when it moves faster").

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "prefetch/prefetcher.h"
#include "sim/virtual_clock.h"

namespace {

using dbtouch::prefetch::Prefetcher;
using dbtouch::prefetch::SimulatedBlockStore;
using dbtouch::sim::Micros;
using dbtouch::storage::RowId;

constexpr std::int64_t kRows = 10'000'000;
constexpr std::int64_t kRowsPerBlock = 4'096;
constexpr Micros kFetchLatency = 30'000;  // 30ms per block fetch.

struct Touch {
  Micros at;
  RowId row;
};

/// Builds the touch sequence for a scenario.
std::vector<Touch> MakeScenario(const std::string& name) {
  std::vector<Touch> touches;
  const Micros step = 66'666;  // 15 Hz
  if (name == "steady") {
    // 4s slide over the full column.
    for (int i = 0; i < 60; ++i) {
      touches.push_back({i * step, i * (kRows / 60)});
    }
  } else if (name == "pause-resume") {
    // Slide 1.5s, pause 2s, resume.
    for (int i = 0; i < 22; ++i) {
      touches.push_back({i * step, i * (kRows / 60)});
    }
    const Micros resume = 22 * step + 2'000'000;
    for (int i = 22; i < 60; ++i) {
      touches.push_back({resume + (i - 22) * step, i * (kRows / 60)});
    }
  } else {  // speed-up: first half at 1x, second half at 4x row velocity.
    RowId row = 0;
    Micros at = 0;
    for (int i = 0; i < 30; ++i) {
      touches.push_back({at, row});
      at += step;
      row += kRows / 120;
    }
    for (int i = 0; i < 30 && row < kRows; ++i) {
      touches.push_back({at, row});
      at += step;
      row += kRows / 30;
    }
  }
  return touches;
}

struct RunResult {
  std::int64_t stalls = 0;
  double stall_ms = 0.0;
  std::int64_t fetches = 0;
};

RunResult Run(const std::string& scenario, bool prefetch_on,
              double horizon_s = 0.5) {
  SimulatedBlockStore store(kRowsPerBlock, kFetchLatency);
  Prefetcher::Config config;
  config.enabled = prefetch_on;
  config.horizon_s = horizon_s;
  Prefetcher prefetcher(&store, config);
  for (const Touch& t : MakeScenario(scenario)) {
    prefetcher.OnTouch(t.at, t.row, kRows);
  }
  RunResult out;
  out.stalls = prefetcher.stats().stalls;
  out.stall_ms = dbtouch::sim::MicrosToMillis(prefetcher.stats().stall_us);
  out.fetches = store.fetches_issued();
  return out;
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-PREFETCH", "paper Section 2.6 'Prefetching Data'",
      "User-visible stalls during slides over a slow medium (30ms block\n"
      "fetches), with gesture extrapolation + prefetch vs demand fetching.");

  std::printf("\n");
  dbtouch::bench::Table table({"scenario", "prefetch", "stalls",
                               "stall_ms", "blocks_fetched"});
  for (const char* scenario : {"steady", "pause-resume", "speed-up"}) {
    for (const bool on : {false, true}) {
      const RunResult r = Run(scenario, on);
      table.Row({scenario, on ? "on" : "off",
                 dbtouch::bench::Fmt(r.stalls),
                 dbtouch::bench::Fmt(r.stall_ms, 1),
                 dbtouch::bench::Fmt(r.fetches)});
    }
  }

  std::printf("\nHorizon sweep (steady slide):\n\n");
  dbtouch::bench::Table sweep({"horizon_s", "stalls", "stall_ms",
                               "blocks_fetched"});
  for (const double h : {0.05, 0.1, 0.25, 0.5, 1.0}) {
    const RunResult r = Run("steady", true, h);
    sweep.Row({dbtouch::bench::Fmt(h, 2), dbtouch::bench::Fmt(r.stalls),
               dbtouch::bench::Fmt(r.stall_ms, 1),
               dbtouch::bench::Fmt(r.fetches)});
  }
  std::printf("\nThe horizon must exceed the fetch latency at gesture "
              "speed; beyond that,\nextra look-ahead only costs bandwidth.\n\n");
}

void BM_PrefetcherOnTouch(benchmark::State& state) {
  SimulatedBlockStore store(kRowsPerBlock, kFetchLatency);
  Prefetcher::Config config;
  Prefetcher prefetcher(&store, config);
  Micros now = 0;
  RowId row = 0;
  for (auto _ : state) {
    prefetcher.OnTouch(now, row, kRows);
    now += 66'666;
    row = (row + kRows / 60) % kRows;
  }
}
BENCHMARK(BM_PrefetcherOnTouch);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
