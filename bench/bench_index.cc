// ABL-INDEX — paper Section 2.6 "Indexing": index support for filtered
// exploration. Zone maps prune summary bands that cannot match a
// predicate; the sorted index turns a value-range question into a direct
// lookup. Both are built per sample level.

#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/bench_util.h"
#include "index/level_index_set.h"
#include "index/sorted_index.h"
#include "index/zone_map.h"
#include "sampling/sample_hierarchy.h"
#include "storage/datagen.h"

namespace {

using dbtouch::index::SortedIndex;
using dbtouch::index::ZoneMap;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kRows = 10'000'000;

double Ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-INDEX", "paper Section 2.6 'Indexing'",
      "Filtered exploration with index support. Predicate: values in a\n"
      "narrow range (selectivity sweep). Work compared: full scan vs\n"
      "zone-map pruned scan vs sorted-index lookup.");

  const Column column = dbtouch::storage::MakePaperEvalColumn(kRows);
  const auto view = column.View();

  const auto build_zm_t0 = Clock::now();
  const ZoneMap zone_map(view, 65'536);
  const double zm_build_ms = Ms(build_zm_t0);
  const auto build_si_t0 = Clock::now();
  const SortedIndex sorted(view);
  const double si_build_ms = Ms(build_si_t0);

  std::printf("\nBuild cost: zone map %.1f ms (%lld zones), sorted index "
              "%.1f ms.\n\n",
              zm_build_ms, static_cast<long long>(zone_map.num_zones()),
              si_build_ms);

  dbtouch::bench::Table table({"selectivity", "method", "rows_touched",
                               "matches", "ms"});
  for (const double width : {10.0, 1'000.0, 100'000.0}) {
    const double lo = 500'000.0 - width / 2.0;
    const double hi = 500'000.0 + width / 2.0;
    const double selectivity = width / 1'000'000.0;

    // Full scan.
    {
      const auto t0 = Clock::now();
      std::int64_t matches = 0;
      for (RowId r = 0; r < kRows; ++r) {
        const double v = view.GetAsDouble(r);
        if (v >= lo && v <= hi) {
          ++matches;
        }
      }
      table.Row({dbtouch::bench::Fmt(selectivity, 6), "full-scan",
                 dbtouch::bench::Fmt(kRows), dbtouch::bench::Fmt(matches),
                 dbtouch::bench::Fmt(Ms(t0), 1)});
    }
    // Zone-map pruned scan. (Uniform data: zones rarely prune whole
    // regions for wide ranges, which is itself informative.)
    {
      const auto t0 = Clock::now();
      std::int64_t matches = 0;
      std::int64_t touched = 0;
      for (const auto& zone : zone_map.MatchingZones(lo, hi)) {
        for (RowId r = zone.first; r <= zone.last; ++r) {
          ++touched;
          const double v = view.GetAsDouble(r);
          if (v >= lo && v <= hi) {
            ++matches;
          }
        }
      }
      table.Row({dbtouch::bench::Fmt(selectivity, 6), "zone-map",
                 dbtouch::bench::Fmt(touched),
                 dbtouch::bench::Fmt(matches),
                 dbtouch::bench::Fmt(Ms(t0), 1)});
    }
    // Sorted index.
    {
      const auto t0 = Clock::now();
      const std::int64_t matches = sorted.CountInValueRange(lo, hi);
      table.Row({dbtouch::bench::Fmt(selectivity, 6), "sorted-index",
                 dbtouch::bench::Fmt(
                     static_cast<std::int64_t>(matches)),
                 dbtouch::bench::Fmt(matches),
                 dbtouch::bench::Fmt(Ms(t0), 3)});
    }
  }
  std::printf(
      "\nOn uniform data zone maps cannot prune (every zone spans the full\n"
      "value range) — the sorted index is the only sublinear path. On\n"
      "clustered data zone maps prune nearly everything:\n\n");

  // Clustered data: zone maps shine.
  Column clustered = dbtouch::storage::GenSegmentedDouble(
      "seg", kRows, {0.0, 100.0, 200.0, 300.0, 400.0, 500.0, 600.0, 700.0},
      5.0, 9);
  const ZoneMap zm2(clustered.View(), 65'536);
  const auto zones = zm2.MatchingZones(395.0, 405.0);
  std::int64_t zone_rows = 0;
  for (const auto& z : zones) {
    zone_rows += z.last - z.first + 1;
  }
  std::printf("clustered data, range [395,405]: %zu of %lld zones match "
              "(%lld of %lld rows scanned)\n\n",
              zones.size(), static_cast<long long>(zm2.num_zones()),
              static_cast<long long>(zone_rows),
              static_cast<long long>(kRows));
}

void BM_ZoneMapProbe(benchmark::State& state) {
  const Column column = dbtouch::storage::MakePaperEvalColumn(1'000'000);
  const ZoneMap zm(column.View(), 4096);
  RowId row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(zm.MayMatch(row, 100.0, 200.0));
    row = (row + 9973) % 1'000'000;
  }
}
BENCHMARK(BM_ZoneMapProbe);

void BM_SortedIndexCount(benchmark::State& state) {
  const Column column = dbtouch::storage::MakePaperEvalColumn(1'000'000);
  const SortedIndex idx(column.View());
  double lo = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.CountInValueRange(lo, lo + 1000.0));
    lo += 997.0;
    if (lo > 900'000.0) {
      lo = 0.0;
    }
  }
}
BENCHMARK(BM_SortedIndexCount);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
