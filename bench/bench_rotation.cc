// ABL-ROTATE — paper Section 2.8 "Schema and Storage Layout Gestures":
// incremental rotation ("changing the layout can be done in steps") vs a
// monolithic transpose, plus what the layout buys: slide-scan locality in
// the matching orientation.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "layout/rotation.h"
#include "storage/datagen.h"

namespace {

using dbtouch::layout::IncrementalRotator;
using dbtouch::layout::RotateMonolithic;
using dbtouch::storage::Column;
using dbtouch::storage::ColumnView;
using dbtouch::storage::MajorOrder;
using dbtouch::storage::RowId;
using dbtouch::storage::Table;
using Clock = std::chrono::steady_clock;

std::shared_ptr<Table> MakeWideTable(std::int64_t rows, MajorOrder order) {
  std::vector<Column> cols;
  cols.push_back(dbtouch::storage::GenSequenceInt64("c0", rows, 0, 1));
  for (int c = 1; c < 8; ++c) {
    cols.push_back(dbtouch::storage::GenUniformInt32(
        "c" + std::to_string(c), rows, 0, 1'000'000,
        static_cast<std::uint64_t>(c)));
  }
  return std::move(Table::FromColumns("wide", std::move(cols), order))
      .value();
}

double Ms(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-ROTATE", "paper Section 2.8 'Schema and Storage Layout Gestures'",
      "Incremental rotate (bounded work per touch) vs monolithic\n"
      "transpose, on an 8-column table; then the payoff: column-scan cost\n"
      "in each layout.");

  std::printf("\n");
  dbtouch::bench::Table table({"rows", "method", "first_response_ms",
                               "total_ms", "steps"});
  for (const std::int64_t rows :
       {std::int64_t{100'000}, std::int64_t{1'000'000}}) {
    {
      auto t = MakeWideTable(rows, MajorOrder::kColumnMajor);
      const auto t0 = Clock::now();
      IncrementalRotator rotator(t.get(), MajorOrder::kRowMajor, 65'536);
      rotator.Step();  // First chunk: the per-touch budget.
      const double first_ms = Ms(t0);
      std::int64_t steps = 1;
      while (!rotator.Step()) {
        ++steps;
      }
      (void)rotator.Finish();
      table.Row({dbtouch::bench::Fmt(rows), "incremental",
                 dbtouch::bench::Fmt(first_ms, 2),
                 dbtouch::bench::Fmt(Ms(t0), 1),
                 dbtouch::bench::Fmt(steps + 1)});
    }
    {
      auto t = MakeWideTable(rows, MajorOrder::kColumnMajor);
      const auto t0 = Clock::now();
      (void)RotateMonolithic(t.get(), MajorOrder::kRowMajor);
      const double total = Ms(t0);
      table.Row({dbtouch::bench::Fmt(rows), "monolithic",
                 dbtouch::bench::Fmt(total, 1),
                 dbtouch::bench::Fmt(total, 1), "1"});
    }
  }
  std::printf(
      "\nIncremental rotation's first response is one bounded chunk — the\n"
      "screen stays interactive — while the monolithic transpose blocks\n"
      "for the whole copy.\n");

  // The payoff: scanning one attribute under each layout.
  std::printf("\nColumn-scan cost by layout (sum one attribute, 10^6 "
              "rows):\n\n");
  dbtouch::bench::Table scan({"layout", "stride_bytes", "scan_ms"});
  for (const MajorOrder order :
       {MajorOrder::kColumnMajor, MajorOrder::kRowMajor}) {
    auto t = MakeWideTable(1'000'000, order);
    const ColumnView view = t->ColumnViewAt(3);
    const auto t0 = Clock::now();
    double sum = 0.0;
    for (RowId r = 0; r < view.row_count(); ++r) {
      sum += view.GetAsDouble(r);
    }
    benchmark::DoNotOptimize(sum);
    scan.Row({MajorOrderName(order),
              dbtouch::bench::Fmt(static_cast<std::int64_t>(view.stride())),
              dbtouch::bench::Fmt(Ms(t0), 2)});
  }
  std::printf("\nColumn-major scans touch 4-byte strides (dense); row-major "
              "pays the full\ntuple width per value — the locality the rotate "
              "gesture trades between.\n\n");
}

void BM_IncrementalStep(benchmark::State& state) {
  auto t = MakeWideTable(1'000'000, MajorOrder::kColumnMajor);
  IncrementalRotator rotator(t.get(), MajorOrder::kRowMajor,
                             state.range(0));
  for (auto _ : state) {
    if (rotator.done()) {
      state.PauseTiming();
      t = MakeWideTable(1'000'000, MajorOrder::kColumnMajor);
      rotator = IncrementalRotator(t.get(), MajorOrder::kRowMajor,
                                   state.range(0));
      state.ResumeTiming();
    }
    rotator.Step();
  }
  state.counters["rows_per_step"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IncrementalStep)->Arg(4096)->Arg(65536)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
