// CONTEST — paper Appendix A "Exploration Contest: dbTouch Vs. DBMS".
//
// Two explorers race to characterise an unknown data set: one slides over
// a dbTouch object, the other fires SQL-style queries at a monolithic
// column-store executor. The quantitative contrast: time to FIRST result
// and the cadence of results while exploring. dbTouch surfaces its first
// entry at the first registered touch (~1/15 s of gesture time, and
// microseconds of compute); the monolithic engine answers only after
// consuming the full input.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "baseline/monolithic.h"
#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace {

using dbtouch::baseline::MonolithicExecutor;
using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::ResultKind;
using dbtouch::sim::MicrosToMillis;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kRows = 10'000'000;

// The pattern to discover: a level-shifted region, the kind of anomaly the
// demo's "alternative data sets with a varying set of properties and
// patterns" hide (point outliers this sparse are invisible to *any*
// sampling explorer; regions are what summaries catch).
constexpr RowId kAnomalyFirst = 7'100'000;
constexpr RowId kAnomalyLast = 7'350'000;

std::shared_ptr<Table> MakeContestTable() {
  Column values("signal", dbtouch::storage::DataType::kDouble);
  values.Reserve(kRows);
  dbtouch::Rng rng(77);
  for (RowId r = 0; r < kRows; ++r) {
    const bool anomalous = r >= kAnomalyFirst && r <= kAnomalyLast;
    values.AppendDouble(100.0 + 5.0 * rng.NextGaussian() +
                        (anomalous ? 60.0 : 0.0));
  }
  std::vector<Column> cols;
  cols.push_back(std::move(values));
  return std::move(Table::FromColumns("contest", std::move(cols))).value();
}

void PrintReport() {
  dbtouch::bench::Banner(
      "CONTEST", "paper Appendix A, exploration contest",
      "dbTouch (slide for summaries) vs monolithic DBMS (full-scan\n"
      "queries) on the same 10^7-row data set with planted anomalies.\n"
      "Compared: time to first result and result cadence.");

  const auto table = MakeContestTable();

  // --- dbTouch explorer: one 4-second slide with summaries. -------------
  Kernel kernel;
  (void)kernel.RegisterTable(table);
  const auto obj = kernel.CreateColumnObject("contest", "signal",
                                             RectCm{2.0, 1.0, 2.0, 10.0});
  (void)kernel.SetAction(*obj, ActionConfig::Summary(10));
  TraceBuilder builder(kernel.device());
  const auto trace =
      builder.Slide("contest", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(4.0));

  const auto t0 = Clock::now();
  kernel.Replay(trace);
  const double dbtouch_wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  const auto& items = kernel.results().items();
  const double first_result_gesture_ms =
      items.empty() ? -1.0 : MicrosToMillis(items[0].timestamp_us);
  std::int64_t results_in_first_second = 0;
  for (const auto& item : items) {
    if (item.timestamp_us <= 1'000'000) {
      ++results_in_first_second;
    }
  }

  // --- SQL explorer: the queries an analyst would fire. ------------------
  dbtouch::storage::Catalog catalog;
  (void)catalog.Register(table);
  const MonolithicExecutor sql(&catalog);
  const auto avg =
      sql.Aggregate("contest", "signal", dbtouch::exec::AggKind::kAvg);
  const auto mx = sql.FindExtreme("contest", "signal", /*find_max=*/true);
  const auto cnt = sql.CountWhere("contest", "signal",
                                  dbtouch::exec::Predicate(4000.0, 6000.0));

  std::printf("\n");
  dbtouch::bench::Table table_out({"explorer", "first_result_ms",
                                   "results_in_1s", "rows_for_first"});
  table_out.Row({"dbTouch(slide)",
                 dbtouch::bench::Fmt(first_result_gesture_ms, 1),
                 dbtouch::bench::Fmt(results_in_first_second),
                 dbtouch::bench::Fmt(items.empty()
                                         ? 0
                                         : items[0].rows_aggregated)});
  table_out.Row({"DBMS avg(col)", dbtouch::bench::Fmt(avg->wall_ms, 1),
                 "1", dbtouch::bench::Fmt(avg->rows_scanned)});
  table_out.Row({"DBMS max(col)", dbtouch::bench::Fmt(mx->wall_ms, 1), "1",
                 dbtouch::bench::Fmt(mx->rows_scanned)});
  table_out.Row({"DBMS count(rng)", dbtouch::bench::Fmt(cnt->wall_ms, 1),
                 "1", dbtouch::bench::Fmt(cnt->rows_scanned)});

  std::printf(
      "\ndbTouch produced %lld results during the 4s gesture (compute: "
      "%.2f ms total);\nthe monolithic engine scans all %lld rows before "
      "its first (and only) answer.\nNote: dbTouch's first-result time is "
      "gesture time to the first registered touch;\nits compute cost per "
      "touch is microseconds.\n\n",
      static_cast<long long>(items.size()), dbtouch_wall_ms,
      static_cast<long long>(kRows));

  // Anomaly check: did the slide surface the planted region?
  bool region_surfaced = false;
  for (const auto& item : items) {
    if (item.kind == ResultKind::kSummary && item.value.AsDouble() > 115.0 &&
        item.band_last >= kAnomalyFirst && item.band_first <= kAnomalyLast) {
      region_surfaced = true;
      break;
    }
  }
  std::printf("Planted anomalous region [%lld, %lld]: %s during the single "
              "slide\n(drill down with zoom-in to localise further).\n\n",
              static_cast<long long>(kAnomalyFirst),
              static_cast<long long>(kAnomalyLast),
              region_surfaced ? "SURFACED" : "not surfaced");
}

void BM_DbtouchFirstResult(benchmark::State& state) {
  const auto table = MakeContestTable();
  for (auto _ : state) {
    state.PauseTiming();
    Kernel kernel;
    (void)kernel.RegisterTable(table);
    const auto obj = kernel.CreateColumnObject(
        "contest", "signal", RectCm{2.0, 1.0, 2.0, 10.0});
    (void)kernel.SetAction(*obj, ActionConfig::Summary(10));
    TraceBuilder builder(kernel.device());
    auto trace = builder.Slide("s", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                               MotionProfile::Constant(0.2));
    state.ResumeTiming();
    kernel.Replay(trace);
    benchmark::DoNotOptimize(kernel.results().size());
  }
}
BENCHMARK(BM_DbtouchFirstResult)->Unit(benchmark::kMicrosecond);

void BM_MonolithicAggregate(benchmark::State& state) {
  const auto table = MakeContestTable();
  dbtouch::storage::Catalog catalog;
  (void)catalog.Register(table);
  const MonolithicExecutor sql(&catalog);
  for (auto _ : state) {
    const auto r =
        sql.Aggregate("contest", "signal", dbtouch::exec::AggKind::kAvg);
    benchmark::DoNotOptimize(r->value);
  }
}
BENCHMARK(BM_MonolithicAggregate)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
