// FIG4B — paper Figure 4(b): "Effect of varying object size during a slide
// for interactive summaries."
//
// Set-up reproduced from Section 3: same column of 10^7 integers; a
// zoom-in gesture progressively doubles the data object's size; for each
// size a slide runs top to bottom at the same *speed* ("at each step we
// double the size of the object and we take double the time to complete
// the slide gesture"). Measured: data entries returned per size.
//
// Paper's claim: bigger objects expose more touchable positions, so the
// same gesture speed inspects more data — entries grow ~linearly in size.

#include <benchmark/benchmark.h>

#include <cmath>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace {

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::KernelConfig;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

constexpr std::int64_t kPaperRows = 10'000'000;
// Calibrated from the paper's Figure 4(b): ~55 entries at a 24cm object.
// At the 15Hz registered-touch rate that implies a ~6.5cm/s finger.
constexpr double kSlideSpeedCmPerS = 6.5;  // Constant across sizes.

std::int64_t RunAtSize(double object_cm, std::int64_t rows) {
  KernelConfig config;
  // Allow objects up to the paper's 24cm. A 24cm object exceeds the
  // iPad's portrait height; the paper slides it along the display's long
  // axis/diagonal. We model that by giving the virtual screen enough
  // extent to host the full gesture (see EXPERIMENTS.md) — the claim
  // under test is the linear entries-vs-size scaling, not the bezel.
  config.zoom_max_extent_cm = 30.0;
  config.device.screen_height_cm = 26.0;
  Kernel kernel(config);
  std::vector<Column> cols;
  cols.push_back(dbtouch::storage::MakePaperEvalColumn(rows));
  if (!kernel.RegisterTable(*Table::FromColumns("eval", std::move(cols)))
           .ok()) {
    std::abort();
  }
  const auto id = kernel.CreateColumnObject(
      "eval", "values", RectCm{2.0, 0.0, 2.0, object_cm});
  if (!id.ok() ||
      !kernel.SetAction(*id, ActionConfig::Summary(10)).ok()) {
    std::abort();
  }
  TraceBuilder builder(kernel.device());
  const double duration_s = object_cm / kSlideSpeedCmPerS;
  kernel.Replay(builder.Slide("fig4b", PointCm{3.0, 0.0},
                              PointCm{3.0, object_cm},
                              MotionProfile::Constant(duration_s)));
  return kernel.stats().entries_returned;
}

void PrintReport() {
  dbtouch::bench::Banner(
      "FIG4B", "paper Figure 4(b), Section 3 'Varying Object Size'",
      "Entries returned vs object size after successive zoom-in gestures\n"
      "(constant slide speed; duration doubles with size). Larger objects\n"
      "allow finer-grained access: entries grow ~linearly with size.");

  std::printf("\n");
  dbtouch::bench::Table table({"object_cm", "slide_secs", "entries",
                               "entries/cm"});
  for (const double cm : {1.5, 3.0, 6.0, 12.0, 24.0}) {
    const std::int64_t entries = RunAtSize(cm, kPaperRows);
    table.Row({dbtouch::bench::Fmt(cm, 1),
               dbtouch::bench::Fmt(cm / kSlideSpeedCmPerS, 1),
               dbtouch::bench::Fmt(entries),
               dbtouch::bench::Fmt(static_cast<double>(entries) / cm, 1)});
  }
  std::printf("\nDoubling the object size ~doubles the entries seen at "
              "constant speed,\nmatching the paper's Figure 4(b) shape.\n\n");
}

// Micro-benchmark: zoom pipeline (pinch gesture -> frame growth).
void BM_PinchZoom(benchmark::State& state) {
  KernelConfig config;
  Kernel kernel(config);
  std::vector<Column> cols;
  cols.push_back(dbtouch::storage::MakePaperEvalColumn(100'000));
  (void)kernel.RegisterTable(*Table::FromColumns("eval", std::move(cols)));
  const auto id = kernel.CreateColumnObject("eval", "values",
                                            RectCm{2.0, 1.0, 2.0, 10.0});
  TraceBuilder builder(kernel.device());
  const auto pinch = builder.Pinch("zoom", PointCm{3.0, 6.0}, M_PI / 2.0,
                                   2.0, 6.0, 0.5);
  (void)id;
  for (auto _ : state) {
    kernel.Replay(pinch);
  }
  state.counters["pinch_steps"] =
      static_cast<double>(kernel.stats().pinch_steps);
}
BENCHMARK(BM_PinchZoom);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
