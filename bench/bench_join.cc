// ABL-JOIN — paper Section 2.9 "Joins": "The join is primarily a blocking
// operator as the hash-join is the typical choice ... exploiting non
// blocking options is a necessary path in dbTouch."
//
// Compared: the symmetric (non-blocking) hash join fed by slide touches vs
// the classic blocking build+probe join, on time-to-first-match and match
// cadence during the gesture.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "baseline/monolithic.h"
#include "bench/bench_util.h"
#include "exec/join.h"
#include "storage/catalog.h"
#include "storage/datagen.h"

namespace {

using dbtouch::baseline::MonolithicExecutor;
using dbtouch::exec::JoinSide;
using dbtouch::exec::SymmetricHashJoin;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;
using dbtouch::storage::Table;
using Clock = std::chrono::steady_clock;

constexpr std::int64_t kRows = 1'000'000;

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-JOIN", "paper Section 2.9 'Joins'",
      "Slide-driven symmetric hash join vs blocking build+probe join\n"
      "(10^6 x 10^6 rows, keys uniform over 10^5 values).");

  Column left = dbtouch::storage::GenUniformInt32("l", kRows, 0, 99'999, 1);
  Column right = dbtouch::storage::GenUniformInt32("r", kRows, 0, 99'999, 2);

  // --- dbTouch: interleaved touches, as two alternating slides produce.
  SymmetricHashJoin join(left.View(), right.View());
  const auto t0 = Clock::now();
  double first_match_ms = -1.0;
  std::int64_t touches = 0;
  std::int64_t matches = 0;
  // A gesture touches ~60 rows/side over 4s; simulate several gesture
  // rounds (600 touches per side) interleaved.
  for (std::int64_t i = 0; i < 600; ++i) {
    const RowId row = (kRows / 600) * i;
    matches += static_cast<std::int64_t>(
        join.Feed(JoinSide::kLeft, row).size());
    ++touches;
    matches += static_cast<std::int64_t>(
        join.Feed(JoinSide::kRight, row).size());
    ++touches;
    if (first_match_ms < 0 && matches > 0) {
      first_match_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - t0)
              .count();
    }
  }
  const double sym_total_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // --- Baseline: blocking hash join over the full inputs.
  dbtouch::storage::Catalog catalog;
  {
    std::vector<Column> lc;
    lc.push_back(std::move(left));
    (void)catalog.Register(*Table::FromColumns("L", std::move(lc)));
    std::vector<Column> rc;
    rc.push_back(std::move(right));
    (void)catalog.Register(*Table::FromColumns("R", std::move(rc)));
  }
  const MonolithicExecutor sql(&catalog);
  const auto blocking = sql.HashJoin("L", "l", "R", "r");

  std::printf("\n");
  dbtouch::bench::Table table({"join", "first_match_ms", "touches/rows",
                               "matches", "total_ms"});
  table.Row({"symmetric(slide)", dbtouch::bench::Fmt(first_match_ms, 3),
             dbtouch::bench::Fmt(touches), dbtouch::bench::Fmt(matches),
             dbtouch::bench::Fmt(sym_total_ms, 2)});
  table.Row({"blocking(build+probe)",
             dbtouch::bench::Fmt(blocking->build_ms, 1),
             dbtouch::bench::Fmt(blocking->rows_scanned),
             dbtouch::bench::Fmt(blocking->matches),
             dbtouch::bench::Fmt(blocking->total_ms, 1)});
  std::printf(
      "\nThe symmetric join surfaces its first match after a handful of\n"
      "touches (microseconds of compute); the blocking join cannot answer\n"
      "before its build phase consumes an entire input. The blocking join\n"
      "wins on total throughput when ALL matches are wanted — exactly the\n"
      "trade-off the paper describes for exploration.\n\n");
}

void BM_SymmetricFeed(benchmark::State& state) {
  const Column left =
      dbtouch::storage::GenUniformInt32("l", kRows, 0, 99'999, 1);
  const Column right =
      dbtouch::storage::GenUniformInt32("r", kRows, 0, 99'999, 2);
  SymmetricHashJoin join(left.View(), right.View());
  RowId row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(join.Feed(JoinSide::kLeft, row));
    benchmark::DoNotOptimize(join.Feed(JoinSide::kRight, row));
    row = (row + 7919) % kRows;
  }
}
BENCHMARK(BM_SymmetricFeed);

void BM_BlockingJoin(benchmark::State& state) {
  dbtouch::storage::Catalog catalog;
  {
    std::vector<Column> lc;
    lc.push_back(dbtouch::storage::GenUniformInt32("l", 100'000, 0, 9'999, 1));
    (void)catalog.Register(*Table::FromColumns("L", std::move(lc)));
    std::vector<Column> rc;
    rc.push_back(dbtouch::storage::GenUniformInt32("r", 100'000, 0, 9'999, 2));
    (void)catalog.Register(*Table::FromColumns("R", std::move(rc)));
  }
  const MonolithicExecutor sql(&catalog);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sql.HashJoin("L", "l", "R", "r")->matches);
  }
}
BENCHMARK(BM_BlockingJoin)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
