// ABL-SAMPLE — paper Section 2.6 "Sample-based Storage": feeding a slide
// from the sample level matched to object size & gesture speed vs always
// reading base data.
//
// With summaries at coarse granularity, a base-data band covers
// stride*(2k+1) entries per touch while the matched sample level reads
// just 2k+1 — the sample hierarchy is what keeps per-touch work constant
// as data grows.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/kernel.h"
#include "sampling/sample_hierarchy.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

namespace {

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::KernelConfig;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

struct RunResult {
  std::int64_t entries = 0;
  std::int64_t rows_scanned = 0;
  double wall_ms = 0.0;
  double max_touch_ms = 0.0;
};

RunResult RunSlide(std::int64_t rows, bool use_sampling) {
  KernelConfig config;
  config.use_sampling = use_sampling;
  Kernel kernel(config);
  std::vector<Column> cols;
  cols.push_back(dbtouch::storage::MakePaperEvalColumn(rows));
  (void)kernel.RegisterTable(*Table::FromColumns("eval", std::move(cols)));
  const auto obj = kernel.CreateColumnObject("eval", "values",
                                             RectCm{2.0, 1.0, 2.0, 10.0});
  (void)kernel.SetAction(*obj, ActionConfig::Summary(10));
  TraceBuilder builder(kernel.device());
  const auto trace = builder.Slide("s", PointCm{3.0, 1.0},
                                   PointCm{3.0, 11.0},
                                   MotionProfile::Constant(2.0));
  kernel.Replay(trace);
  RunResult out;
  out.entries = kernel.stats().entries_returned;
  out.rows_scanned = kernel.stats().rows_scanned;
  out.wall_ms = static_cast<double>(kernel.stats().exec_wall_ns) / 1e6;
  out.max_touch_ms =
      static_cast<double>(kernel.stats().max_touch_wall_ns) / 1e6;
  return out;
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-SAMPLE", "paper Section 2.6 'Sample-based Storage'",
      "Per-slide cost feeding from the matched sample level vs always\n"
      "reading base data (2s summary slide, k=10, 10cm object).");

  std::printf("\n");
  dbtouch::bench::Table table({"rows", "mode", "entries", "rows_scanned",
                               "exec_ms", "max_touch_ms"});
  for (const std::int64_t rows :
       {std::int64_t{100'000}, std::int64_t{1'000'000},
        std::int64_t{10'000'000}}) {
    for (const bool sampling : {true, false}) {
      const RunResult r = RunSlide(rows, sampling);
      table.Row({dbtouch::bench::Fmt(rows),
                 sampling ? "sample-level" : "base-data",
                 dbtouch::bench::Fmt(r.entries),
                 dbtouch::bench::Fmt(r.rows_scanned),
                 dbtouch::bench::Fmt(r.wall_ms, 2),
                 dbtouch::bench::Fmt(r.max_touch_ms, 3)});
    }
  }
  std::printf(
      "\nSample-level reads stay ~constant per touch as data grows 100x;\n"
      "base-data bands grow with the touch granularity (rows/positions).\n\n");

  // Hierarchy construction cost / memory.
  dbtouch::bench::Table build({"rows", "levels", "sample_MiB",
                               "build_ms"});
  for (const std::int64_t rows :
       {std::int64_t{1'000'000}, std::int64_t{10'000'000}}) {
    const Column base = dbtouch::storage::MakePaperEvalColumn(rows);
    const auto t0 = std::chrono::steady_clock::now();
    dbtouch::sampling::SampleHierarchy h(base.View());
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    build.Row({dbtouch::bench::Fmt(rows),
               dbtouch::bench::Fmt(static_cast<std::int64_t>(h.num_levels())),
               dbtouch::bench::Fmt(
                   static_cast<double>(h.sample_bytes()) / (1024.0 * 1024.0),
                   2),
               dbtouch::bench::Fmt(ms, 1)});
  }
  std::printf("\n");
}

void BM_SummaryAtLevel(benchmark::State& state) {
  const bool sampling = state.range(0) == 1;
  const RunResult r = RunSlide(1'000'000, sampling);
  benchmark::DoNotOptimize(r.entries);
  for (auto _ : state) {
    const RunResult rr = RunSlide(1'000'000, sampling);
    benchmark::DoNotOptimize(rr.rows_scanned);
  }
  state.SetLabel(sampling ? "sample-level" : "base-data");
}
BENCHMARK(BM_SummaryAtLevel)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
