// ABL-ADAPT — paper Section 2.9 "Optimization": adaptive optimization
// interleaved with execution. A slide-driven conjunctive filter crosses
// data regions with different properties; the adaptive operator reorders
// its predicates per region from observed pass rates.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "exec/adaptive_filter.h"
#include "storage/column.h"

namespace {

using dbtouch::Rng;
using dbtouch::exec::AdaptiveConjunctionConfig;
using dbtouch::exec::AdaptiveConjunctionOp;
using dbtouch::exec::CompareOp;
using dbtouch::exec::Predicate;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;

constexpr std::int64_t kRows = 2'000'000;
constexpr int kSegments = 8;

/// Three attributes whose selectivities rotate across 8 data segments:
/// in segment s, predicate (s % 3) is the selective one (5% pass), the
/// others pass 85%.
std::vector<Column> MakeShiftingData() {
  std::vector<Column> cols;
  Rng rng(5);
  for (int c = 0; c < 3; ++c) {
    Column col("c" + std::to_string(c), dbtouch::storage::DataType::kInt32);
    col.Reserve(kRows);
    for (std::int64_t r = 0; r < kRows; ++r) {
      const int segment = static_cast<int>(r * kSegments / kRows);
      const bool selective_here = segment % 3 == c;
      col.AppendInt32(rng.NextBernoulli(selective_here ? 0.05 : 0.85) ? 1
                                                                      : 0);
    }
    cols.push_back(std::move(col));
  }
  return cols;
}

AdaptiveConjunctionOp MakeOp(const std::vector<Column>& cols,
                             std::int64_t num_regions) {
  AdaptiveConjunctionConfig config;
  config.num_regions = num_regions;
  std::vector<AdaptiveConjunctionOp::Term> terms;
  for (const Column& c : cols) {
    terms.push_back({c.View(), Predicate(CompareOp::kEq, 1.0)});
  }
  return AdaptiveConjunctionOp(std::move(terms), kRows, config);
}

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-ADAPT", "paper Section 2.9 'Optimization'",
      "Slide-driven 3-predicate conjunction over data whose selective\n"
      "attribute rotates across 8 segments. Cost = predicate evaluations\n"
      "(lower is better; 1.0/row is the oracle short-circuit).");

  const auto cols = MakeShiftingData();
  // The slide touches every 1000th row, start to end (a slow full pass).
  std::vector<RowId> touches;
  for (RowId r = 0; r < kRows; r += 1000) {
    touches.push_back(r);
  }

  std::printf("\n");
  dbtouch::bench::Table table({"regions", "evaluations", "evals/row",
                               "rows_passed"});
  for (const std::int64_t regions : {1L, 4L, 16L, 64L, 256L}) {
    AdaptiveConjunctionOp op = MakeOp(cols, regions);
    for (const RowId r : touches) {
      op.Feed(r);
    }
    table.Row({dbtouch::bench::Fmt(regions),
               dbtouch::bench::Fmt(op.evaluations()),
               dbtouch::bench::Fmt(static_cast<double>(op.evaluations()) /
                                       static_cast<double>(op.rows_fed()),
                                   3),
               dbtouch::bench::Fmt(op.rows_passed())});
  }
  std::printf(
      "\nregions=1 is a classic one-shot optimizer (single global order): it\n"
      "fits the segments its global statistics happen to match and loses in\n"
      "the rest. Moderate region counts adapt to each segment and approach\n"
      "the short-circuit floor; very fine regions degrade again because few\n"
      "touches land in each region and the statistics never warm up — the\n"
      "tension the paper flags ('much harder to make reliable decisions\n"
      "regarding when to switch').\n\n");
}

void BM_AdaptiveFeed(benchmark::State& state) {
  const auto cols = MakeShiftingData();
  AdaptiveConjunctionOp op = MakeOp(cols, state.range(0));
  RowId row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Feed(row));
    row = (row + 997) % kRows;
  }
  state.counters["regions"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_AdaptiveFeed)->Arg(1)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
