// Shared helpers for the experiment benchmarks. Each bench binary prints
// a paper-style series table (deterministic, virtual-time driven) before
// running its google-benchmark micro-benchmarks (wall time), and the smoke
// flows additionally dump a BENCH_<name>.json metric report — the perf
// trajectory CI diffs against the checked-in baselines in bench/baselines/.

#ifndef DBTOUCH_BENCH_BENCH_UTIL_H_
#define DBTOUCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace dbtouch::bench {

/// Prints the experiment banner: id, paper reference, what it shows.
inline void Banner(const char* experiment_id, const char* paper_ref,
                   const char* claim) {
  std::printf("\n==================================================================\n");
  std::printf("Experiment %s  (%s)\n", experiment_id, paper_ref);
  std::printf("%s\n", claim);
  std::printf("==================================================================\n");
}

/// Fixed-width table output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) {
      std::printf("%-18s", h.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%-18s", "----------------");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) {
      std::printf("%-18s", c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string Fmt(std::int64_t v) { return std::to_string(v); }

/// Flat metric report written as BENCH_<name>.json:
///
///   {"bench": "server",
///    "metrics": {"flood_touches_per_s": 51234.0, ...},
///    "gates": {"flood_touches_per_s": {"direction": "higher",
///                                      "tol": 0.5}, ...}}
///
/// Gates declare, per metric, which direction is an improvement and how
/// much fractional regression the CI compare step
/// (tools/compare_bench.py) tolerates before failing the job; ungated
/// metrics are informational. The gates live IN the baseline file so a
/// checked-in baseline documents its own tolerances.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  void Metric(const std::string& key, double value) {
    metrics_.emplace_back(key, value);
  }
  void Metric(const std::string& key, std::int64_t value) {
    metrics_.emplace_back(key, static_cast<double>(value));
  }

  /// `direction`: "higher" or "lower" (which way is better); `tol`: the
  /// allowed fractional regression (0.2 = fail past 20% worse).
  void Gate(const std::string& key, const char* direction, double tol) {
    gates_.push_back({key, direction, tol});
  }

  /// Writes the report; returns false (and prints) on I/O failure.
  bool Write(const std::string& path) const {
    obs::JsonWriter writer;
    writer.BeginObject();
    writer.Field("bench", name_);
    writer.Key("metrics");
    writer.BeginObject();
    for (const auto& [key, value] : metrics_) {
      writer.Field(key, value);
    }
    writer.EndObject();
    writer.Key("gates");
    writer.BeginObject();
    for (const GateSpec& gate : gates_) {
      writer.Key(gate.key);
      writer.BeginObject();
      writer.Field("direction", gate.direction);
      writer.Field("tol", gate.tol);
      writer.EndObject();
    }
    writer.EndObject();
    writer.EndObject();
    std::ofstream out(path, std::ios::trunc);
    out << writer.view() << "\n";
    if (!out.good()) {
      std::printf("FAILED to write %s\n", path.c_str());
      return false;
    }
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  struct GateSpec {
    std::string key;
    std::string direction;
    double tol = 0.2;
  };

  std::string name_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<GateSpec> gates_;
};

}  // namespace dbtouch::bench

#endif  // DBTOUCH_BENCH_BENCH_UTIL_H_
