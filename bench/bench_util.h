// Shared helpers for the experiment benchmarks. Each bench binary prints
// a paper-style series table (deterministic, virtual-time driven) before
// running its google-benchmark micro-benchmarks (wall time).

#ifndef DBTOUCH_BENCH_BENCH_UTIL_H_
#define DBTOUCH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace dbtouch::bench {

/// Prints the experiment banner: id, paper reference, what it shows.
inline void Banner(const char* experiment_id, const char* paper_ref,
                   const char* claim) {
  std::printf("\n==================================================================\n");
  std::printf("Experiment %s  (%s)\n", experiment_id, paper_ref);
  std::printf("%s\n", claim);
  std::printf("==================================================================\n");
}

/// Fixed-width table output.
class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    for (const auto& h : headers_) {
      std::printf("%-18s", h.c_str());
    }
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%-18s", "----------------");
    }
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) {
    for (const auto& c : cells) {
      std::printf("%-18s", c.c_str());
    }
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(double v, int decimals = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

inline std::string Fmt(std::int64_t v) { return std::to_string(v); }

}  // namespace dbtouch::bench

#endif  // DBTOUCH_BENCH_BENCH_UTIL_H_
