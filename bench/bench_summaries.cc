// ABL-SUMMARY — paper Section 2.7 "Interactive Summaries": cost of the
// [id-k, id+k] band aggregation as k grows, against the plain per-entry
// scan, plus the choice of aggregation function.

#include <benchmark/benchmark.h>

#include <chrono>
#include <vector>

#include "bench/bench_util.h"
#include "exec/summary.h"
#include "storage/datagen.h"

namespace {

using dbtouch::exec::AggKind;
using dbtouch::exec::InteractiveSummaryOp;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;

constexpr std::int64_t kRows = 10'000'000;

void PrintReport() {
  dbtouch::bench::Banner(
      "ABL-SUMMARY", "paper Section 2.7 'Interactive Summaries'",
      "Per-touch cost of summaries vs band half-width k (60 touches, one\n"
      "4s slide's worth), and entries inspected per touch.");

  const Column column = dbtouch::storage::MakePaperEvalColumn(kRows);

  std::printf("\n");
  dbtouch::bench::Table table({"k", "entries/touch", "rows/slide",
                               "ns/touch"});
  for (const std::int64_t k : {0L, 1L, 4L, 10L, 32L, 64L, 128L, 256L}) {
    InteractiveSummaryOp op(column.View(), k);
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kTouches = 60;
    for (int i = 0; i < kTouches; ++i) {
      const RowId center = (kRows / kTouches) * i;
      benchmark::DoNotOptimize(op.ComputeAt(center));
    }
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      kTouches;
    table.Row({dbtouch::bench::Fmt(k),
               dbtouch::bench::Fmt(static_cast<std::int64_t>(2 * k + 1)),
               dbtouch::bench::Fmt(op.rows_scanned()),
               dbtouch::bench::Fmt(ns, 0)});
  }
  std::printf(
      "\nk=10 (the paper's setting) inspects 21 entries per touch at\n"
      "sub-microsecond cost: summaries widen what one finger touch 'sees'\n"
      "at negligible latency, until k reaches cache-unfriendly sizes.\n\n");
}

void BM_SummaryComputeAt(benchmark::State& state) {
  const Column column = dbtouch::storage::MakePaperEvalColumn(1'000'000);
  InteractiveSummaryOp op(column.View(), state.range(0));
  RowId center = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.ComputeAt(center));
    center = (center + 9973) % 1'000'000;
  }
  state.counters["k"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SummaryComputeAt)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_SummaryAggKinds(benchmark::State& state) {
  const Column column = dbtouch::storage::MakePaperEvalColumn(1'000'000);
  const auto kind = static_cast<AggKind>(state.range(0));
  InteractiveSummaryOp op(column.View(), 10, kind);
  RowId center = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.ComputeAt(center));
    center = (center + 9973) % 1'000'000;
  }
  state.SetLabel(std::string(AggKindName(kind)));
}
BENCHMARK(BM_SummaryAggKinds)
    ->Arg(static_cast<int>(AggKind::kAvg))
    ->Arg(static_cast<int>(AggKind::kMin))
    ->Arg(static_cast<int>(AggKind::kStdDev));

}  // namespace

int main(int argc, char** argv) {
  PrintReport();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
