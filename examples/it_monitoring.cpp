// The IT-analyst scenario from the paper's introduction: "a data analyst
// of an IT business browses daily data of monitoring streams to figure out
// user behavior patterns."
//
// A monitoring table (timestamp, host, latency_ms, error_rate) contains
// latency regime shifts and planted spikes. The analyst:
//
//   1. Taps the table object to discover its schema (no SQL, no DESCRIBE).
//   2. Drags the latency column out of the fat table to study it alone.
//   3. Slides with a min/max summary to find the slow regimes.
//   4. Runs a slide-driven group-by(host) on the table to see which hosts
//      are implicated.
//
// Build & run:  ./build/examples/it_monitoring

#include <cstdio>
#include <vector>

#include "core/kernel.h"
#include "layout/restructure.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::ResultItem;
using dbtouch::core::ResultKind;
using dbtouch::exec::AggKind;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::RowId;
using dbtouch::touch::RectCm;

int main() {
  std::vector<RowId> spikes;
  const auto monitoring =
      dbtouch::storage::MakeMonitoringTable(2'000'000, /*seed=*/7, &spikes);

  Kernel kernel;
  if (!kernel.RegisterTable(monitoring).ok()) {
    return 1;
  }
  const auto table_obj =
      kernel.CreateTableObject("monitoring", RectCm{6.0, 1.0, 8.0, 10.0});
  if (!table_obj.ok()) {
    return 1;
  }
  TraceBuilder gestures(kernel.device());

  // --- 1. Schema discovery by touch: tap reveals a full tuple. -----------
  kernel.Replay(gestures.Tap("discover", PointCm{9.0, 3.0}));
  std::printf("Tap on the table object reveals a tuple (schema-less "
              "querying):\n");
  for (const ResultItem& item : kernel.results().items()) {
    std::printf("  %s = %s\n",
                monitoring->schema()
                    .field(item.attribute)
                    .name.c_str(),
                item.value.ToString().c_str());
  }

  // --- 2. Drag the latency column out to its own object. ------------------
  const auto latency_idx = monitoring->schema().FieldIndex("latency_ms");
  const auto extracted = dbtouch::layout::ExtractColumnToTable(
      &kernel.catalog(), *monitoring, *latency_idx, "latency");
  if (!extracted.ok()) {
    std::fprintf(stderr, "%s\n", extracted.status().ToString().c_str());
    return 1;
  }
  const auto latency_obj = kernel.CreateColumnObject(
      "latency", "latency_ms", RectCm{1.0, 1.0, 2.0, 10.0});
  std::printf("\nDragged 'latency_ms' out of the fat table into its own "
              "object\n(smaller data -> faster response, paper Section "
              "2.8).\n");

  // --- 3. Max-summaries over latency: regimes and spikes pop out. --------
  if (!kernel
           .SetAction(*latency_obj,
                      ActionConfig::Summary(/*k=*/10, AggKind::kMax))
           .ok()) {
    return 1;
  }
  const std::int64_t before = kernel.results().size();
  kernel.Replay(gestures.Slide("latency-pass", PointCm{2.0, 1.0},
                               PointCm{2.0, 11.0},
                               MotionProfile::Constant(4.0),
                               kernel.clock().now() + 500'000));
  std::printf("\nSlide over latency (max, k=10): bands with max > 50ms:\n");
  int slow_bands = 0;
  const auto& items = kernel.results().items();
  for (std::size_t i = static_cast<std::size_t>(before); i < items.size();
       ++i) {
    if (items[i].kind == ResultKind::kSummary &&
        items[i].value.AsDouble() > 50.0) {
      if (++slow_bands <= 6) {
        std::printf("  rows %lld..%lld  max=%.0fms\n",
                    static_cast<long long>(items[i].band_first),
                    static_cast<long long>(items[i].band_last),
                    items[i].value.AsDouble());
      }
    }
  }
  std::printf("  (%d slow bands total; the 4th and 7th latency regimes and "
              "the planted\n   spikes are exactly where they surface)\n",
              slow_bands);

  // --- 4. Slide-driven group-by(host) on the table object. ----------------
  const auto host_idx = monitoring->schema().FieldIndex("host");
  if (!kernel
           .SetAction(*table_obj,
                      ActionConfig::GroupBy(*host_idx, *latency_idx,
                                            AggKind::kAvg))
           .ok()) {
    return 1;
  }
  kernel.Replay(gestures.Slide("groupby", PointCm{9.0, 1.0},
                               PointCm{9.0, 11.0},
                               MotionProfile::Constant(3.0),
                               kernel.clock().now() + 500'000));
  std::printf("\nSlide-driven group-by(host) over the touched tuples "
              "(avg latency):\n");
  // The group table accretes as tuples are touched; read the final state
  // from the last group-update per key by replaying the snapshot.
  std::printf("  groups surfaced while sliding: %lld updates\n",
              static_cast<long long>(
                  kernel.results().CountKind(ResultKind::kGroupUpdate)));

  std::printf("\nTotal rows touched: %lld of %lld — the analyst profiled "
              "latency regimes\nand per-host behaviour without one full "
              "scan.\n",
              static_cast<long long>(kernel.stats().rows_scanned),
              static_cast<long long>(monitoring->row_count()));
  return 0;
}
