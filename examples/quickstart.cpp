// Quickstart: the dbTouch public API in one file.
//
//   1. Generate a column of data and register it with the kernel.
//   2. Put a column-shaped data object on the (simulated) screen.
//   3. Tap it to peek at a value; slide over it to scan; switch the
//      action to interactive summaries and slide again.
//   4. Inspect the result stream, the way the screen would render it.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::ResultItem;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

int main() {
  // --- 1. Data: one million sensor readings. -----------------------------
  Kernel kernel;
  std::vector<Column> columns;
  columns.push_back(dbtouch::storage::GenSinusoidDouble(
      "reading", 1'000'000, /*amplitude=*/10.0, /*period=*/125'000.0,
      /*noise_stddev=*/0.5, /*seed=*/42));
  auto table = Table::FromColumns("sensor", std::move(columns));
  if (!table.ok() || !kernel.RegisterTable(*table).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  // --- 2. A column object: 2cm wide, 10cm tall, at (2cm, 1cm). -----------
  const auto object = kernel.CreateColumnObject(
      "sensor", "reading", RectCm{2.0, 1.0, 2.0, 10.0});
  if (!object.ok()) {
    std::fprintf(stderr, "%s\n", object.status().ToString().c_str());
    return 1;
  }
  std::printf("Registered table 'sensor' (%lld rows) and bound it to a "
              "10cm column object.\n\n",
              static_cast<long long>(1'000'000));

  TraceBuilder gestures(kernel.device());

  // --- 3a. Tap the middle: one value pops up. -----------------------------
  kernel.Replay(gestures.Tap("peek", PointCm{3.0, 6.0}));
  const ResultItem& tap = kernel.results().back();
  std::printf("Tap at the object's middle -> row %lld, value %s\n",
              static_cast<long long>(tap.row),
              tap.value.ToString().c_str());

  // --- 3b. Slide top-to-bottom in 2 seconds: a scan. ----------------------
  kernel.Replay(gestures.Slide("scan", PointCm{3.0, 1.0},
                               PointCm{3.0, 11.0},
                               MotionProfile::Constant(2.0)));
  std::printf("\n2s slide (scan): %lld entries surfaced while the finger "
              "moved.\n",
              static_cast<long long>(kernel.stats().entries_returned - 1));

  // --- 3c. Switch to interactive summaries and slide slowly. -------------
  if (!kernel.SetAction(*object, ActionConfig::Summary(/*k=*/10)).ok()) {
    return 1;
  }
  const std::int64_t before = kernel.results().size();
  kernel.Replay(gestures.Slide("summaries", PointCm{3.0, 1.0},
                               PointCm{3.0, 11.0},
                               MotionProfile::Constant(4.0)));
  std::printf("4s slide (summaries, k=10): %lld band averages.\n\n",
              static_cast<long long>(kernel.results().size() - before));

  // --- 4. What the screen shows right now (results fade with age). --------
  const auto visible = kernel.results().VisibleAt(kernel.clock().now());
  std::printf("On screen at t=%.2fs (most recent = boldest):\n",
              dbtouch::sim::MicrosToSeconds(kernel.clock().now()));
  int shown = 0;
  for (auto it = visible.rbegin(); it != visible.rend() && shown < 8;
       ++it, ++shown) {
    const ResultItem& r = *it->item;
    std::printf("  [opacity %.2f] rows %lld..%lld  avg=%s\n", it->opacity,
                static_cast<long long>(r.band_first),
                static_cast<long long>(r.band_last),
                r.value.ToString().c_str());
  }

  std::printf("\nSession summary:\n");
  kernel.sessions().EndSession(kernel.clock().now());
  for (const auto& s : kernel.sessions().completed()) {
    std::printf("  session %lld: %lld gestures, %lld touches, %lld entries, "
                "%.1fs\n",
                static_cast<long long>(s.id),
                static_cast<long long>(s.gestures),
                static_cast<long long>(s.touches),
                static_cast<long long>(s.entries_returned), s.duration_s());
  }
  return 0;
}
