// Multi-user exploration: eight analysts share one catalog through the
// touch server, each with a private session — own data objects, own
// actions, own result stream — while the frame scheduler keeps every
// session inside its per-touch deadline.
//
//   1. Register two tables once; sample hierarchies are built once and
//      shared by every session that binds them.
//   2. Open eight sessions: half run interactive summaries over "metrics",
//      half run filtered scans over "events".
//   3. Replay each user's slide trace paced at gesture speed, all
//      concurrently, and drain.
//   4. Print per-session results and the server's deadline accounting.
//
// Build & run:  ./build/example_multi_user

#include <cstdio>
#include <vector>

#include "core/kernel.h"
#include "exec/predicate.h"
#include "server/api.h"
#include "server/touch_server.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::server::ServerStatsSnapshot;
using dbtouch::server::SessionId;
using dbtouch::server::TouchServer;
using dbtouch::server::TouchServerConfig;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

int main() {
  TouchServerConfig config;
  config.num_workers = 0;  // One worker per core.
  TouchServer server(config);

  {
    std::vector<Column> metrics;
    metrics.push_back(
        dbtouch::storage::GenGaussianDouble("load", 500'000, 60.0, 15.0, 7));
    if (!server.RegisterTable(*Table::FromColumns("metrics",
                                                  std::move(metrics)))
             .ok()) {
      std::fprintf(stderr, "failed to register metrics\n");
      return 1;
    }
    std::vector<Column> events;
    events.push_back(
        dbtouch::storage::GenSequenceInt64("severity", 500'000, 0, 1));
    if (!server.RegisterTable(*Table::FromColumns("events",
                                                  std::move(events)))
             .ok()) {
      std::fprintf(stderr, "failed to register events\n");
      return 1;
    }
  }
  if (!server.Start().ok()) {
    return 1;
  }
  std::printf("touch server up: %d workers, %zu tables\n",
              server.num_workers(), server.shared().catalog().size());

  Kernel reference;  // Device geometry for trace building.
  TraceBuilder builder(reference.device());
  const auto trace =
      builder.Slide("explore", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                    MotionProfile::Constant(2.0));

  constexpr int kUsers = 8;
  std::vector<SessionId> sessions;
  for (int i = 0; i < kUsers; ++i) {
    const auto session = server.OpenSession();
    if (!session.ok()) {
      return 1;
    }
    sessions.push_back(*session);
    const bool summary_user = i % 2 == 0;
    const auto object = server.CreateColumnObject(
        *session, summary_user ? "metrics" : "events",
        summary_user ? "load" : "severity", RectCm{2.0, 1.0, 2.0, 10.0});
    if (!object.ok()) {
      return 1;
    }
    const ActionConfig action =
        summary_user
            ? ActionConfig::Summary(10)
            : ActionConfig::Filter(dbtouch::exec::Predicate(
                  dbtouch::exec::CompareOp::kGt, 450'000.0));
    if (!server.SetAction(*session, *object, action).ok()) {
      return 1;
    }
  }
  std::printf("%d sessions exploring concurrently (paced 2 s slides)...\n",
              kUsers);
  for (const SessionId id : sessions) {
    if (!server.SubmitTrace(id, trace).ok()) {
      return 1;
    }
  }
  if (!server.Drain().ok()) {
    return 1;
  }

  const ServerStatsSnapshot stats = server.stats();
  std::printf("\nper-session results:\n");
  for (const SessionId id : sessions) {
    const auto& per = stats.per_session.at(id);
    dbtouch::server::api::SessionSnapshotReq snap_req;
    snap_req.session = id;
    const auto snapshot = server.Call(snap_req);
    const std::int64_t results = snapshot.ok() ? snapshot->result_count : 0;
    std::printf(
        "  session %lld: %lld touches executed, %lld results, "
        "%lld misses, %lld shed\n",
        static_cast<long long>(id), static_cast<long long>(per.executed),
        static_cast<long long>(results),
        static_cast<long long>(per.deadline_misses),
        static_cast<long long>(per.dropped_quanta));
  }
  std::printf(
      "\nserver: %lld touches served, p50 %.2f ms, p99 %.2f ms, "
      "miss rate %.1f%%, fairness %.3f\n",
      static_cast<long long>(stats.executed),
      static_cast<double>(stats.p50_latency_us) / 1e3,
      static_cast<double>(stats.p99_latency_us) / 1e3,
      stats.miss_rate() * 100.0, stats.fairness);
  std::printf("shared sample memory: %.1f MB for %zu hierarchies\n",
              static_cast<double>(server.shared().sample_bytes()) / 1e6,
              server.shared().hierarchy_count());
  (void)server.Stop();
  return 0;
}
