// The astronomer scenario from the paper's introduction: "an astronomer
// wants to browse parts of the sky to look for interesting effects."
//
// A sky-survey table (object id, right ascension, declination, brightness)
// hides brightness bursts — stretches of consecutive survey rows a
// transient event lights up. The astronomer explores the dbTouch way:
//
//   1. Fast slide with coarse summaries over the whole brightness column —
//      a 4-second overview of 10^7 objects.
//   2. Any band whose summary looks anomalous gets a zoom-in (pinch) and a
//      slow slide at finer granularity to tighten the localisation.
//
// Build & run:  ./build/examples/astronomer

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::ResultItem;
using dbtouch::core::ResultKind;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::RowId;
using dbtouch::touch::RectCm;

namespace {

constexpr std::int64_t kObjects = 10'000'000;

/// Bands found during a pass whose summary deviates hard from the
/// sinusoidal baseline (amplitude 2): base-row ranges worth a closer look.
std::vector<std::pair<RowId, RowId>> SuspiciousBands(
    const std::vector<ResultItem>& items, std::int64_t from_index,
    double threshold) {
  std::vector<std::pair<RowId, RowId>> bands;
  for (std::size_t i = static_cast<std::size_t>(from_index);
       i < items.size(); ++i) {
    const ResultItem& r = items[i];
    if (r.kind == ResultKind::kSummary && r.value.AsDouble() > threshold) {
      if (!bands.empty() && r.band_first <= bands.back().second) {
        bands.back().second = std::max(bands.back().second, r.band_last);
      } else {
        bands.emplace_back(r.band_first, r.band_last);
      }
    }
  }
  return bands;
}

}  // namespace

int main() {
  std::vector<RowId> point_transients;
  std::vector<std::pair<RowId, RowId>> bursts;
  const auto sky = dbtouch::storage::MakeSkyTable(
      kObjects, /*seed=*/2013, &point_transients, &bursts);
  std::printf("Sky survey: %lld objects; %zu burst regions and %zu point "
              "transients hidden\nin 'brightness'.\n\n",
              static_cast<long long>(kObjects), bursts.size(),
              point_transients.size());

  // Drill-down precision matters more than read locality here: don't let
  // fast gestures coarsen the sample level.
  dbtouch::core::KernelConfig kernel_config;
  kernel_config.level_policy.speed_weight = 0.0;
  Kernel kernel(kernel_config);
  if (!kernel.RegisterTable(sky).ok()) {
    return 1;
  }
  const auto object = kernel.CreateColumnObject(
      "sky", "brightness", RectCm{2.0, 1.0, 2.0, 10.0});
  if (!object.ok() ||
      !kernel.SetAction(*object, ActionConfig::Summary(10)).ok()) {
    return 1;
  }
  TraceBuilder gestures(kernel.device());

  // --- Pass 1: 4-second overview slide. ----------------------------------
  kernel.Replay(gestures.Slide("overview", PointCm{3.0, 1.0},
                               PointCm{3.0, 11.0},
                               MotionProfile::Constant(4.0)));
  const auto candidate_bands =
      SuspiciousBands(kernel.results().items(), 0, 3.0);
  std::printf("Pass 1 (fast slide, %lld summaries): %zu suspicious "
              "band(s):\n",
              static_cast<long long>(kernel.results().size()),
              candidate_bands.size());
  for (const auto& [first, last] : candidate_bands) {
    std::printf("  rows %lld..%lld\n", static_cast<long long>(first),
                static_cast<long long>(last));
  }

  // --- Pass 2: zoom in (pinch), pan each candidate band on-screen, and
  // reslide it slowly at the finer granularity. -----------------------------
  const auto view = kernel.object_view(*object);
  kernel.Replay(gestures.Pinch("zoom", PointCm{3.0, 6.0}, M_PI / 2.0, 2.0,
                               5.0, 0.5, kernel.clock().now() + 200'000));
  std::printf("\nZoom-in: object now %.1fcm tall (finer granularity).\n",
              (*view)->tuple_axis_extent());

  const double screen_center_y =
      kernel.device().config().screen_height_cm / 2.0;
  std::vector<std::pair<RowId, RowId>> refined;
  for (const auto& [first, last] : candidate_bands) {
    const double extent = (*view)->tuple_axis_extent();
    // Pan gesture: bring this band's stretch of the (now oversized)
    // object onto the screen, centred.
    const double band_center_pos = dbtouch::touch::RowToPosition(
        (first + last) / 2, extent, kObjects);
    RectCm frame = (*view)->frame();
    frame.y = screen_center_y - band_center_pos;
    (*view)->set_frame(frame);

    const double x = frame.x + 1.0;
    const double y0 =
        frame.y + dbtouch::touch::RowToPosition(first, extent, kObjects);
    const double y1 =
        frame.y + dbtouch::touch::RowToPosition(last, extent, kObjects);
    const std::int64_t before = kernel.results().size();
    kernel.Replay(gestures.Slide("drill", PointCm{x, y0}, PointCm{x, y1},
                                 MotionProfile::Constant(4.0),
                                 kernel.clock().now() + 200'000));
    for (const auto& band :
         SuspiciousBands(kernel.results().items(), before, 8.0)) {
      refined.push_back(band);
    }
  }
  std::printf("Pass 2 (slow reslide over candidates): %zu refined "
              "band(s).\n",
              refined.size());

  // --- Verify: every planted burst overlaps a refined band. ---------------
  std::int64_t found = 0;
  for (const auto& [bf, bl] : bursts) {
    for (const auto& [rf, rl] : refined) {
      if (bl >= rf && bf <= rl) {
        ++found;
        break;
      }
    }
  }
  std::printf("\nBurst regions localised: %lld / %zu\n",
              static_cast<long long>(found), bursts.size());
  std::printf("Rows scanned in total: %lld of %lld (%.4f%%)\n",
              static_cast<long long>(kernel.stats().rows_scanned),
              static_cast<long long>(kObjects),
              100.0 * static_cast<double>(kernel.stats().rows_scanned) /
                  static_cast<double>(kObjects));
  std::printf("\nThe astronomer cornered every burst from two gesture "
              "passes over a\nfraction of the data — no SQL, no full "
              "scan.\n");
  return found == static_cast<std::int64_t>(bursts.size()) ? 0 : 1;
}
