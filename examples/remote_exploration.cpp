// Remote processing (paper Section 4): the tablet holds only small coarse
// samples; a server holds the base data and big samples. This example
// slides over a remote-backed column under the three client strategies and
// prints what the user experiences under each.
//
// Build & run:  ./build/examples/remote_exploration

#include <cstdio>

#include "remote/network.h"
#include "remote/remote_store.h"
#include "storage/datagen.h"

using dbtouch::remote::NetworkConfig;
using dbtouch::remote::RemoteClient;
using dbtouch::remote::RemoteServer;
using dbtouch::remote::RemoteStrategy;
using dbtouch::remote::RemoteStrategyName;
using dbtouch::remote::SimulatedNetwork;
using dbtouch::sim::Micros;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;

int main() {
  constexpr std::int64_t kRows = 10'000'000;
  Column base = dbtouch::storage::MakePaperEvalColumn(kRows);
  RemoteServer server(base.View());
  std::printf("Server: %lld-row column + %d sample levels.\n",
              static_cast<long long>(kRows),
              server.hierarchy().num_levels());

  NetworkConfig net_config;  // 20ms one-way, 100 Mbit/s.
  std::printf("Network: %lld ms one-way latency, %.0f Mbit/s.\n\n",
              static_cast<long long>(net_config.one_way_latency_us / 1000),
              net_config.bytes_per_second * 8.0 / 1e6);

  for (const RemoteStrategy strategy :
       {RemoteStrategy::kLocalOnly, RemoteStrategy::kPerTouchRpc,
        RemoteStrategy::kBatchedHybrid}) {
    SimulatedNetwork network(net_config);
    RemoteClient::Config config;
    config.strategy = strategy;
    config.local_levels = 2;   // The tablet stores only the 2 coarsest.
    config.target_level = 3;   // The fidelity the user drills to.
    RemoteClient client(&server, &network, config);

    // A 4-second slide: 60 touches across the column.
    Micros now = 0;
    for (int i = 0; i < 60; ++i) {
      client.OnTouch(now, (kRows / 60) * static_cast<RowId>(i));
      now += 66'666;
    }
    client.Flush(now);

    const auto& stats = client.stats();
    std::printf("strategy=%-15s local level L%d\n",
                RemoteStrategyName(strategy), client.local_level());
    std::printf("  touches=%lld  first-answer avg=%.1f ms  refined "
                "avg=%.1f ms\n",
                static_cast<long long>(stats.touches),
                stats.avg_first_answer_ms(), stats.avg_refined_ms());
    std::printf("  network: %lld requests, %lld B down\n\n",
                static_cast<long long>(network.requests_sent()),
                static_cast<long long>(network.bytes_down()));
  }

  std::printf(
      "The hybrid gives instant (coarse) feedback on every touch and\n"
      "refines through a handful of batched requests — the paper's\n"
      "'use local data to feed partial answers, while ... more\n"
      "fine-grained answers are produced and delivered by the server.'\n");
  return 0;
}
