// The exploration contest from the paper's Appendix A, as a runnable
// head-to-head: one explorer uses dbTouch gestures, the other fires
// SQL-style queries at a monolithic column-store executor. Both must
// characterise an unknown data set: find the anomalous region and report
// its approximate location.
//
// Build & run:  ./build/examples/exploration_contest

#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/monolithic.h"
#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "storage/datagen.h"

using dbtouch::baseline::MonolithicExecutor;
using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::core::ResultKind;
using dbtouch::sim::MicrosToMillis;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::RowId;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;
using Clock = std::chrono::steady_clock;

namespace {

constexpr std::int64_t kRows = 10'000'000;
constexpr RowId kRegionFirst = 6'200'000;
constexpr RowId kRegionLast = 6'400'000;

std::shared_ptr<Table> MakeMysteryTable() {
  // Flat noise with one anomalous level-shifted region — the "pattern"
  // the contestants must discover.
  Column signal("signal", dbtouch::storage::DataType::kDouble);
  signal.Reserve(kRows);
  dbtouch::Rng rng(99);
  for (RowId r = 0; r < kRows; ++r) {
    const bool in_region = r >= kRegionFirst && r < kRegionLast;
    signal.AppendDouble(50.0 + 2.0 * rng.NextGaussian() +
                        (in_region ? 30.0 : 0.0));
  }
  std::vector<Column> cols;
  cols.push_back(std::move(signal));
  return std::move(Table::FromColumns("mystery", std::move(cols))).value();
}

double ElapsedMs(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  const auto table = MakeMysteryTable();
  std::printf("Contest data: %lld rows; anomalous region hidden at "
              "[%lld, %lld).\n\n",
              static_cast<long long>(kRows),
              static_cast<long long>(kRegionFirst),
              static_cast<long long>(kRegionLast));

  // ---- Contestant 1: dbTouch. ---------------------------------------------
  std::printf("== Contestant 1: dbTouch (one slide, summaries k=10) ==\n");
  Kernel kernel;
  (void)kernel.RegisterTable(table);
  const auto obj = kernel.CreateColumnObject("mystery", "signal",
                                             RectCm{2.0, 1.0, 2.0, 10.0});
  (void)kernel.SetAction(*obj, ActionConfig::Summary(10));
  TraceBuilder gestures(kernel.device());
  const auto wall0 = Clock::now();
  kernel.Replay(gestures.Slide("hunt", PointCm{3.0, 1.0},
                               PointCm{3.0, 11.0},
                               MotionProfile::Constant(4.0)));
  const double dbtouch_compute_ms = ElapsedMs(wall0);

  RowId found_first = -1;
  RowId found_last = -1;
  double found_at_gesture_ms = -1.0;
  for (const auto& item : kernel.results().items()) {
    if (item.kind == ResultKind::kSummary && item.value.AsDouble() > 60.0) {
      if (found_first < 0) {
        found_first = item.band_first;
        found_at_gesture_ms = MicrosToMillis(item.timestamp_us);
      }
      found_last = item.band_last;
    }
  }
  if (found_first >= 0) {
    std::printf("  Anomaly surfaced mid-gesture at %.0f ms (gesture time), "
                "localised to rows\n  [%lld, %lld] — overlaps the true "
                "region: %s. Compute cost: %.2f ms, rows\n  touched: %lld "
                "(%.4f%% of the data).\n",
                found_at_gesture_ms, static_cast<long long>(found_first),
                static_cast<long long>(found_last),
                (found_last >= kRegionFirst && found_first <= kRegionLast)
                    ? "yes"
                    : "NO",
                dbtouch_compute_ms,
                static_cast<long long>(kernel.stats().rows_scanned),
                100.0 * static_cast<double>(kernel.stats().rows_scanned) /
                    static_cast<double>(kRows));
  } else {
    std::printf("  Anomaly not surfaced (unexpected).\n");
  }

  // ---- Contestant 2: SQL on the monolithic engine. -------------------------
  std::printf("\n== Contestant 2: SQL on the monolithic column store ==\n");
  dbtouch::storage::Catalog catalog;
  (void)catalog.Register(table);
  const MonolithicExecutor sql(&catalog);
  // Query 1: overall statistics (something's off — max is high).
  const auto avg = sql.Aggregate("mystery", "signal",
                                 dbtouch::exec::AggKind::kAvg);
  const auto mx = sql.FindExtreme("mystery", "signal", /*find_max=*/true);
  // Query 2: count above threshold confirms a heavy tail.
  const auto cnt = sql.CountWhere("mystery", "signal",
                                  dbtouch::exec::Predicate(
                                      dbtouch::exec::CompareOp::kGt, 70.0));
  // Queries 3..k: binary-search the region with range counts.
  const auto t0 = Clock::now();
  RowId lo = 0;
  RowId hi = kRows;
  std::int64_t probe_queries = 0;
  std::int64_t probe_rows = 0;
  const auto view = table->ColumnViewAt(0);
  while (hi - lo > 250'000) {
    const RowId mid = (lo + hi) / 2;
    // "SELECT count(*) WHERE signal > 70 AND rowid < mid" — the executor
    // scans everything; we model the halves directly.
    std::int64_t left_count = 0;
    for (RowId r = lo; r < mid; ++r) {
      if (view.GetDouble(r) > 70.0) {
        ++left_count;
      }
    }
    probe_rows += mid - lo;
    ++probe_queries;
    if (left_count > 0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double probe_ms = ElapsedMs(t0);
  std::printf("  avg query: %.0f ms (%lld rows) -> avg=%.1f\n",
              avg->wall_ms, static_cast<long long>(avg->rows_scanned),
              avg->value);
  std::printf("  max query: %.0f ms -> max=%.1f at row %lld\n",
              mx->wall_ms, mx->value, static_cast<long long>(mx->row));
  std::printf("  count>70 : %.0f ms -> %lld rows\n", cnt->wall_ms,
              static_cast<long long>(static_cast<std::int64_t>(cnt->value)));
  std::printf("  %lld binary-search range counts: %.0f ms, %lld more rows "
              "-> region near\n  [%lld, %lld]\n",
              static_cast<long long>(probe_queries), probe_ms,
              static_cast<long long>(probe_rows), static_cast<long long>(lo),
              static_cast<long long>(hi));

  const double sql_total_ms =
      avg->wall_ms + mx->wall_ms + cnt->wall_ms + probe_ms;
  std::printf("\n== Verdict ==\n");
  std::printf("  dbTouch : anomaly on screen during the first slide "
              "(compute %.1f ms,\n            %.4f%% of rows touched).\n",
              dbtouch_compute_ms,
              100.0 * static_cast<double>(kernel.stats().rows_scanned) /
                  static_cast<double>(kRows));
  std::printf("  SQL     : %.0f ms of full/partial scans across %lld "
              "queries before the\n            region was cornered.\n",
              sql_total_ms,
              static_cast<long long>(3 + probe_queries));
  return 0;
}
