// Recording and replaying exploration sessions. Gesture traces are plain
// data: this example records a three-gesture session to a text file,
// reloads it, replays it on a fresh kernel, and shows the ASCII screen —
// the workflow for sharing a reproducible exploration with a colleague.
//
// Build & run:  ./build/examples/trace_replay [trace-file]

#include <cmath>
#include <cstdio>

#include "core/ascii_screen.h"
#include "core/kernel.h"
#include "sim/motion_profile.h"
#include "sim/trace_builder.h"
#include "sim/trace_io.h"
#include "storage/datagen.h"

using dbtouch::core::ActionConfig;
using dbtouch::core::Kernel;
using dbtouch::sim::MotionProfile;
using dbtouch::sim::PointCm;
using dbtouch::sim::TraceBuilder;
using dbtouch::storage::Column;
using dbtouch::storage::Table;
using dbtouch::touch::RectCm;

namespace {

Kernel* MakeKernel() {
  auto* kernel = new Kernel();
  std::vector<Column> cols;
  cols.push_back(dbtouch::storage::GenSinusoidDouble(
      "signal", 1'000'000, 8.0, 90'000.0, 0.5, 11));
  if (!kernel
           ->RegisterTable(*Table::FromColumns("waves", std::move(cols)))
           .ok()) {
    std::abort();
  }
  const auto obj = kernel->CreateColumnObject("waves", "signal",
                                              RectCm{2.0, 1.0, 2.0, 10.0});
  if (!obj.ok() ||
      !kernel->SetAction(*obj, ActionConfig::Summary(10)).ok()) {
    std::abort();
  }
  return kernel;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/dbtouch_session.trace";

  // --- Record: compose a session and persist it. --------------------------
  Kernel* recorder = MakeKernel();
  TraceBuilder gestures(recorder->device());
  dbtouch::sim::GestureTrace session =
      gestures.Slide("overview", PointCm{3.0, 1.0}, PointCm{3.0, 11.0},
                     MotionProfile::Constant(2.0));
  session.Append(gestures.Pinch("zoom", PointCm{3.0, 6.0}, M_PI / 2.0, 2.0,
                                4.0, 0.5),
                 250'000);
  MotionProfile revisit;
  revisit.ThenMoveTo(0.8, 1.0).ThenPause(0.5).ThenMoveTo(0.4, 1.0);
  session.Append(gestures.Slide("revisit", PointCm{3.0, 1.0},
                                PointCm{3.0, 12.0}, revisit),
                 250'000);
  session.name = "wave-exploration";

  if (const auto s = dbtouch::sim::SaveTrace(session, path); !s.ok()) {
    std::fprintf(stderr, "save failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("Recorded session '%s': %zu touch events -> %s\n",
              session.name.c_str(), session.events.size(), path.c_str());
  const std::string serialized = dbtouch::sim::SerializeTrace(session);
  std::printf("\nFile head:\n%.*s...\n\n", 180, serialized.c_str());

  recorder->Replay(session);
  const auto recorded_entries = recorder->stats().entries_returned;
  delete recorder;

  // --- Replay: load on a fresh kernel; results are identical. -------------
  const auto loaded = dbtouch::sim::LoadTrace(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  Kernel* replayer = MakeKernel();
  replayer->Replay(*loaded);
  std::printf("Replay on a fresh kernel: %lld entries (recorded run: "
              "%lld) -> %s\n",
              static_cast<long long>(replayer->stats().entries_returned),
              static_cast<long long>(recorded_entries),
              replayer->stats().entries_returned == recorded_entries
                  ? "identical"
                  : "MISMATCH");

  std::printf("\nScreen at the end of the replayed session:\n\n%s\n",
              dbtouch::core::RenderScreen(*replayer).c_str());
  delete replayer;
  return 0;
}
